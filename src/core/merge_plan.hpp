// Compiled execution plan for a merging scheme.
//
// Scheme::Node trees are walked recursively and carry per-leaf modulo
// arithmetic; fine for construction-time work, too slow for the per-cycle
// hot path of the simulator. A MergePlan flattens the tree once, at build
// time, into:
//
//   * a preorder node array with explicit subtree extents (kept for
//     introspection and structural tests), compiled further into a leaf
//     step sequence: per leaf, how many merge blocks open before it and
//     close after it — one select() is a single linear pass over the
//     leaves with a small explicit frame stack, no recursion;
//   * per-rotation leaf permutation tables: leaf_thread(r, i) precomputes
//     (port + r) % num_threads for every rotation r and leaf i, removing
//     the modulo from the leaf path entirely;
//   * a stats template (canonical sub-scheme labels, preorder over merge
//     blocks) that callers can instantiate once and pass back per cycle —
//     or not pass at all: with a null stats pointer the plan skips every
//     counter write (the StatsLevel::kFast policy of the engine).
//
// The plan is immutable after construction and holds no per-cycle state:
// the frame stack lives in caller-owned scratch (constructed once, reused
// every cycle — frames hold Footprints, and zero-initialising them per
// call would dominate the select profile). MergeEngine layers rotation,
// priority policy and statistics on top. Selections are bit-identical to
// the recursive tree walk (covered by the plan-vs-tree property tests).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/scheme.hpp"
#include "isa/footprint.hpp"

namespace cvmt {

/// How much accounting the merge hot path performs per cycle.
enum class StatsLevel : std::uint8_t {
  kFull,  ///< per-merge-block attempt/reject counters + issued histogram
  kFast,  ///< decisions only: IPC sweeps skip all merge-stat writes
};

/// Structural class of a compiled plan, decided once at build time. The
/// shape picks the select() implementation the plan can run: trees walk
/// the frame stack, linear chains fold in registers, and uniform chains
/// (one merge kind, no selects) additionally qualify for the
/// fixed-thread-count unrolled fast path (see has_fixed_path()).
enum class PlanShape : std::uint8_t {
  kTree,          ///< general shape: frame-stack pass
  kLinearChain,   ///< left-deep chain, mixed merge kinds: register fold
  kUniformChain,  ///< left-deep chain, single non-select merge kind
};

[[nodiscard]] constexpr const char* to_string(PlanShape shape) {
  switch (shape) {
    case PlanShape::kTree:
      return "tree";
    case PlanShape::kLinearChain:
      return "linear-chain";
    case PlanShape::kUniformChain:
      return "uniform-chain";
  }
  return "?";
}

/// Attempt/reject counters for one merge block of the scheme.
struct MergeNodeStats {
  std::string label;          ///< canonical sub-scheme, e.g. "S(0,1)"
  MergeKind kind = MergeKind::kCsmt;
  std::uint64_t attempts = 0;  ///< pairwise checks with both sides non-empty
  std::uint64_t rejects = 0;   ///< checks that failed (input dropped)

  [[nodiscard]] double reject_rate() const {
    return attempts ? static_cast<double>(rejects) /
                          static_cast<double>(attempts)
                    : 0.0;
  }
};

/// Flattened, immutable evaluator for one scheme on one machine.
class MergePlan {
 public:
  MergePlan(const Scheme& scheme, const MachineConfig& config);

  /// One scheme-tree node in preorder. Block nodes carry the preorder
  /// index one past their subtree (`end`) and their slot in the stats
  /// array; leaves carry their ordinal among leaves (the index into the
  /// rotation permutation tables).
  struct Node {
    MergeKind kind = MergeKind::kCsmt;
    bool leaf = false;
    std::uint16_t end = 0;         ///< blocks: preorder end of the subtree
    std::uint16_t leaf_index = 0;  ///< leaves: ordinal among leaves
    std::uint16_t stats_index = 0; ///< blocks: slot in the stats array
  };

  /// One step of the compiled evaluation: process leaf `leaf_index` after
  /// opening `opens` blocks (consecutive in preorder-block order, starting
  /// at `first_block`) and then close the innermost `closes` blocks.
  struct LeafStep {
    std::uint16_t leaf_index = 0;
    std::uint16_t first_block = 0;
    std::uint16_t opens = 0;
    std::uint16_t closes = 0;
  };

  /// One open (still accumulating) merge block during a pass. Allocate via
  /// make_scratch() once and reuse; select() never reads a frame before
  /// writing it, so stale contents are harmless.
  struct Frame {
    Footprint fp;
    std::uint32_t mask;
    MergeKind kind;
    bool have;  ///< first non-empty input seen
    MergeNodeStats* stats;
  };

  /// Result of one merge evaluation.
  struct Eval {
    Footprint packet;
    std::uint32_t issued_mask = 0;
  };

  /// Evaluates the scheme against per-thread candidates under priority
  /// rotation `rotation` (in [0, num_threads())). A null `candidates`
  /// entry means the thread offers nothing. `scratch` must hold at least
  /// depth() frames (see make_scratch()). When `stats` is non-null it must
  /// point at num_blocks() slots (see make_stats()) and receives the
  /// attempt/reject counts; when null, no counter is touched.
  [[nodiscard]] Eval select(std::span<const Footprint* const> candidates,
                            int rotation, Frame* scratch,
                            MergeNodeStats* stats) const;

  /// select() minus the offer-count scan: the caller guarantees at least
  /// two candidates are non-null (the cycle loop already counted them
  /// while gathering offers, so the scan would be repeated work).
  [[nodiscard]] Eval select_multi(
      std::span<const Footprint* const> candidates, int rotation,
      Frame* scratch, MergeNodeStats* stats) const;

  /// select() routed through the shape-specialized evaluator: linear
  /// chains of up to 8 threads dispatch a fixed-trip-count instantiation
  /// bound at plan build time (uniform chains additionally resolve the
  /// merge kind at compile time); every other shape falls back to
  /// select_multi(). Decisions and statistics are bit-identical to
  /// select() for all shapes.
  [[nodiscard]] Eval select_specialized(
      std::span<const Footprint* const> candidates, int rotation,
      Frame* scratch, MergeNodeStats* stats) const;

  /// select_specialized() minus the offer-count scan (the
  /// select_multi() counterpart for pre-counted offers). Inline: the
  /// body is a two-way dispatch in front of the bound evaluator, and
  /// this is the per-decision entry of the cycle-loop hot paths.
  [[nodiscard]] Eval select_multi_specialized(
      std::span<const Footprint* const> candidates, int rotation,
      Frame* scratch, MergeNodeStats* stats) const {
    if (fixed_full_ != nullptr)
      return stats != nullptr
                 ? (this->*fixed_full_)(candidates, rotation, stats)
                 : (this->*fixed_fast_)(candidates, rotation, stats);
    return select_multi(candidates, rotation, scratch, stats);
  }

  /// Fresh zeroed stats array matching this plan: one entry per merge
  /// block, preorder, labelled with the block's canonical sub-scheme.
  [[nodiscard]] std::vector<MergeNodeStats> make_stats() const {
    return stats_template_;
  }

  /// Frame stack sized for this plan, for passing back into select().
  [[nodiscard]] std::vector<Frame> make_scratch() const {
    return std::vector<Frame>(static_cast<std::size_t>(depth_) + 1);
  }

  [[nodiscard]] int num_threads() const { return num_threads_; }
  [[nodiscard]] int num_blocks() const {
    return static_cast<int>(stats_template_.size());
  }
  /// True when the scheme is a left-deep chain (cascades, parallel blocks,
  /// IMT — 12 of the 16 paper schemes): evaluation then compiles to a
  /// register-resident fold over the leaves with no frame stack. Balanced
  /// trees (2CC-style) use the general stack pass.
  [[nodiscard]] bool is_linear() const { return !chain_.empty(); }
  /// The structural class decided at build time (see PlanShape).
  [[nodiscard]] PlanShape shape() const { return shape_; }
  /// True when this plan bound an unrolled fixed-thread-count fast path:
  /// any linear chain of 2..8 threads. Uniform chains bind the
  /// compile-time-merge-kind instantiation, mixed/select chains the
  /// fixed-trip-count fold with per-level kinds from the chain table.
  /// Wider chains keep the generic register fold.
  [[nodiscard]] bool has_fixed_path() const {
    return fixed_full_ != nullptr;
  }
  /// Maximum number of simultaneously open blocks during a pass (the
  /// frame-stack depth select() needs).
  [[nodiscard]] int depth() const { return depth_; }
  [[nodiscard]] const std::vector<Node>& nodes() const { return nodes_; }
  [[nodiscard]] const std::vector<LeafStep>& steps() const { return steps_; }
  [[nodiscard]] const MachineConfig& machine() const { return config_; }

  /// The hardware thread that the priority port of leaf `leaf_index` maps
  /// to under `rotation` — reads the precomputed permutation table.
  [[nodiscard]] int leaf_thread(int rotation, int leaf_index) const {
    return leaf_tid_[static_cast<std::size_t>(rotation) *
                         static_cast<std::size_t>(num_threads_) +
                     static_cast<std::size_t>(leaf_index)];
  }

 private:
  struct BlockRef {
    MergeKind kind;
    std::uint16_t stats_index;
  };

  /// The generic pass, specialised at compile time on whether stat
  /// counters are maintained (select() dispatches on stats == nullptr).
  template <bool kCountStats>
  Eval select_impl(std::span<const Footprint* const> candidates,
                   int rotation, Frame* scratch,
                   MergeNodeStats* stats) const;

  /// The left-deep-chain fold (is_linear() plans only).
  template <bool kCountStats>
  Eval select_linear(std::span<const Footprint* const> candidates,
                     int rotation, MergeNodeStats* stats) const;

  /// The unrolled uniform-chain fold: trip count `N` and merge kind `K`
  /// are template parameters, so the compiler emits straight-line code
  /// with the kind switch resolved away. Only bound (via fixed_full_/
  /// fixed_fast_) when the shape check in the constructor passes.
  template <int N, MergeKind K, bool kCountStats>
  Eval select_fixed(std::span<const Footprint* const> candidates,
                    int rotation, MergeNodeStats* stats) const;

  /// The unrolled mixed-kind chain fold: trip count `N` is a template
  /// parameter, the per-level merge kind comes from the chain table (a
  /// perfectly predicted branch — the kind at each unrolled position
  /// never changes for a given plan). Bound for linear chains that are
  /// not uniform.
  template <int N, bool kCountStats>
  Eval select_chain(std::span<const Footprint* const> candidates,
                    int rotation, MergeNodeStats* stats) const;

  using FixedSelectFn = Eval (MergePlan::*)(
      std::span<const Footprint* const>, int, MergeNodeStats*) const;

  /// Instantiates and stores the select_fixed pointers for this plan's
  /// thread count and merge kind (constructor helper).
  void bind_fixed(MergeKind kind);
  template <int N>
  void bind_fixed_n(MergeKind kind);
  /// Same for select_chain (mixed-kind linear chains).
  void bind_chain();
  template <int N>
  void bind_chain_n();

  MachineConfig config_;
  int num_threads_ = 0;
  int depth_ = 0;
  std::vector<Node> nodes_;
  std::vector<LeafStep> steps_;
  std::vector<BlockRef> blocks_;  ///< merge blocks in preorder
  /// Linear plans: chain_[i] is the block leaf i merges under (entry 0
  /// unused — the highest-priority leaf always seeds). Empty for trees.
  std::vector<BlockRef> chain_;
  /// leaf_tid_[r * num_threads + leaf_index] = (port + r) % num_threads.
  std::vector<std::uint8_t> leaf_tid_;
  std::vector<MergeNodeStats> stats_template_;
  PlanShape shape_ = PlanShape::kTree;
  /// Unrolled fast-path entry points (null unless kUniformChain of 2..8
  /// threads): with and without stat-counter maintenance.
  FixedSelectFn fixed_full_ = nullptr;
  FixedSelectFn fixed_fast_ = nullptr;
};

}  // namespace cvmt
