// `cvmt serve` — the long-lived experiment daemon.
//
// One accept loop, one reader thread per connection, one bounded worker
// pool (serve/worker_pool.hpp) executing work requests against the shared
// process-wide ArtifactCache, which stays warm across requests — the
// whole point of residency: the second request for a scheme or workload
// an earlier request compiled pays only the run, never the build.
//
// Life of a request: the connection reader frames one line, parses it,
// and either answers inline (ping/stats/shutdown and every protocol
// error) or admits it to the pool. Admission is where backpressure
// lives: a full queue yields an "overloaded" error with a retry_after_ms
// estimate and executes nothing. Once admitted, a job is guaranteed a
// response — including across graceful shutdown.
//
// Graceful shutdown (SIGTERM, `shutdown` request, or stop()): stop
// accepting connections, reject new work with "shutting_down", drain the
// queue MergeExecutor-style (workers finish everything admitted), and
// only then shut client connections down. Zero lost, zero duplicated.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/metrics.hpp"
#include "serve/protocol.hpp"
#include "serve/worker_pool.hpp"
#include "support/json.hpp"
#include "support/socket.hpp"

namespace cvmt {

struct ServeConfig {
  std::uint16_t port = 0;     ///< 0 = ephemeral (read back via port())
  std::size_t workers = 0;    ///< 0 = all hardware cores
  std::size_t queue_capacity = 256;
  bool verbose = false;       ///< startup/drain lines on stderr
};

class ServeServer {
 public:
  explicit ServeServer(ServeConfig config,
                       ArtifactCache& cache = ArtifactCache::global());
  ServeServer(const ServeServer&) = delete;
  ServeServer& operator=(const ServeServer&) = delete;
  /// stop()s (full graceful drain) when still running.
  ~ServeServer();

  /// Binds the port and launches the accept loop and worker pool.
  /// Throws CheckError when the port cannot be bound.
  void start();

  /// The bound port (after start(); meaningful with config.port == 0).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Asks for a stop without performing it: wakes wait_stop_requested().
  /// Called by the `shutdown` request handler and by signal-watching
  /// outer loops; the thread that owns the server then calls stop().
  void request_stop();

  /// Blocks up to `timeout` for request_stop(); true when requested.
  [[nodiscard]] bool wait_stop_requested_for(
      std::chrono::milliseconds timeout);

  /// Graceful drain: stop admission, complete every admitted job, write
  /// every response, then close connections and join all threads.
  /// Idempotent; concurrent callers block until the drain completes.
  void stop();

  /// The `stats` response payload (also useful for tests/benches).
  [[nodiscard]] JsonValue stats_json() const;

  [[nodiscard]] std::size_t num_workers() const {
    return pool_ ? pool_->num_workers() : 0;
  }

 private:
  /// One client connection: the stream plus the write-side mutex that
  /// serializes response lines from the reader (inline responses) and
  /// any worker (job responses). Held by shared_ptr — a worker may
  /// outlive the reader that admitted its job.
  struct Connection {
    explicit Connection(TcpStream s) : stream(std::move(s)) {}
    TcpStream stream;
    std::mutex write_mu;
    std::atomic<bool> alive{true};

    /// Writes `line` + '\n'; on failure marks the connection dead (the
    /// client disconnected — the job's work is kept, its response
    /// dropped, the worker moves on unwedged).
    void send_line(std::string_view line);
  };

  void accept_loop();
  void connection_loop(const std::shared_ptr<Connection>& conn);
  void handle_line(const std::shared_ptr<Connection>& conn,
                   std::string_view line);
  void submit_work(const std::shared_ptr<Connection>& conn, Request req);
  [[nodiscard]] std::uint64_t retry_after_ms_estimate() const;

  ServeConfig config_;
  ArtifactCache& cache_;
  std::uint16_t port_ = 0;

  TcpListener listener_;
  std::unique_ptr<ServeWorkerPool> pool_;
  std::unique_ptr<ServeMetrics> metrics_;
  std::chrono::steady_clock::time_point started_at_;

  std::thread accept_thread_;
  std::mutex conns_mu_;
  std::vector<std::shared_ptr<Connection>> conns_;
  std::vector<std::thread> readers_;

  std::atomic<bool> draining_{false};

  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stop_requested_ = false;
  std::once_flag stop_once_;
  bool started_ = false;
};

/// `cvmt serve [--port=N] [--workers=K] [--queue=N] [--port-file=FILE]`.
/// Runs until SIGTERM/SIGINT or a `shutdown` request, then drains
/// gracefully. Exit 0 after a clean drain, 2 on usage/bind errors.
[[nodiscard]] int serve_main(int argc, const char* const* argv);

}  // namespace cvmt
