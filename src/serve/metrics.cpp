#include "serve/metrics.hpp"

#include <bit>

#include "support/check.hpp"

namespace cvmt {

void LatencyHistogram::record_us(std::uint64_t us) {
  const std::size_t bucket = static_cast<std::size_t>(
      std::bit_width(us));  // 0 -> 0, 1 -> 1, [2,4) -> 2, ...
  h_.add(bucket < kBuckets ? bucket : kBuckets - 1);
}

std::uint64_t LatencyHistogram::quantile_upper_us(double q) const {
  const std::uint64_t total = h_.total();
  if (total == 0) return 0;
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(total) + 0.5);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < h_.num_buckets(); ++i) {
    cum += h_.bucket(i);
    if (cum >= target && cum > 0)
      return i == 0 ? 1 : (std::uint64_t{1} << i);
  }
  return std::uint64_t{1} << (kBuckets - 1);
}

JsonValue LatencyHistogram::to_json() const {
  JsonValue out = JsonValue::object();
  out.set("count", h_.total());
  out.set("p50_us", quantile_upper_us(0.50));
  out.set("p90_us", quantile_upper_us(0.90));
  out.set("p99_us", quantile_upper_us(0.99));
  std::size_t last = 0;
  for (std::size_t i = 0; i < h_.num_buckets(); ++i)
    if (h_.bucket(i) != 0) last = i + 1;
  JsonValue buckets = JsonValue::array();
  for (std::size_t i = 0; i < last; ++i) buckets.push_back(h_.bucket(i));
  out.set("buckets", std::move(buckets));
  return out;
}

void ServeMetrics::on_queue_depth(std::size_t depth) {
  std::lock_guard<std::mutex> lock(mu_);
  if (depth > queue_high_water_) queue_high_water_ = depth;
}

void ServeMetrics::on_job_done(std::size_t worker, std::string_view type,
                               bool ok, std::uint64_t latency_us,
                               std::uint64_t exec_us) {
  std::lock_guard<std::mutex> lock(mu_);
  ++completed_;
  if (!ok) ++failed_;
  exec_us_total_ += exec_us;
  CVMT_CHECK(worker < workers_.size());
  ++workers_[worker].jobs;
  workers_[worker].busy_us += exec_us;
  latency_all_.record_us(latency_us);
  if (type == "experiment") latency_experiment_.record_us(latency_us);
  if (type == "run") latency_run_.record_us(latency_us);
  if (type == "fuzz") latency_fuzz_.record_us(latency_us);
}

std::uint64_t ServeMetrics::mean_exec_us() const {
  std::lock_guard<std::mutex> lock(mu_);
  return completed_ ? exec_us_total_ / completed_ : 0;
}

JsonValue ServeMetrics::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonValue out = JsonValue::object();

  JsonValue requests = JsonValue::object();
  requests.set("received", received_);
  requests.set("completed", completed_);
  requests.set("failed", failed_);
  requests.set("inline_served", inline_served_);
  requests.set("rejected_overload", rejected_overload_);
  requests.set("rejected_draining", rejected_draining_);
  requests.set("protocol_errors", protocol_errors_);
  out.set("requests", std::move(requests));

  out.set("queue_high_water", queue_high_water_);

  JsonValue workers = JsonValue::array();
  for (const WorkerStat& w : workers_) {
    JsonValue ws = JsonValue::object();
    ws.set("jobs", w.jobs);
    ws.set("busy_us", w.busy_us);
    workers.push_back(std::move(ws));
  }
  out.set("workers", std::move(workers));

  JsonValue latency = JsonValue::object();
  latency.set("all", latency_all_.to_json());
  latency.set("experiment", latency_experiment_.to_json());
  latency.set("run", latency_run_.to_json());
  latency.set("fuzz", latency_fuzz_.to_json());
  out.set("latency", std::move(latency));
  return out;
}

}  // namespace cvmt
