#include "serve/client.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/protocol.hpp"
#include "support/args.hpp"
#include "support/check.hpp"
#include "support/socket.hpp"
#include "support/string_util.hpp"
#include "trace/benchmark_suite.hpp"

namespace cvmt {
namespace {

using SteadyClock = std::chrono::steady_clock;

/// Line-framed view over a TcpStream: send whole request lines, receive
/// whole response lines (buffering partial reads).
class LineConn {
 public:
  explicit LineConn(TcpStream stream) : stream_(std::move(stream)) {}

  [[nodiscard]] bool send_line(std::string line) {
    line += '\n';
    return stream_.send_all(line);
  }

  /// Next response line, stripped of the terminator; false on EOF/error.
  [[nodiscard]] bool recv_line(std::string* out) {
    for (;;) {
      const std::size_t pos = buf_.find('\n');
      if (pos != std::string::npos) {
        *out = buf_.substr(0, pos);
        if (!out->empty() && out->back() == '\r') out->pop_back();
        buf_.erase(0, pos + 1);
        return true;
      }
      std::array<char, 16384> chunk;
      const long n = stream_.recv_some(chunk.data(), chunk.size());
      if (n <= 0) return false;
      buf_.append(chunk.data(), static_cast<std::size_t>(n));
    }
  }

 private:
  TcpStream stream_;
  std::string buf_;
};

/// Copies the sim-level fields (--fast/--budget/.../--machine) into a
/// request "params" or "config" object; only flags the user actually set
/// are sent, so the server's own defaulting stays authoritative.
void fill_sim_fields(const ArgParser& args, JsonValue* obj) {
  if (args.get_flag("fast")) obj->set("fast", true);
  if (args.set_on_cli("budget"))
    obj->set("budget", args.get_u64("budget", 0));
  if (args.set_on_cli("timeslice"))
    obj->set("timeslice", args.get_u64("timeslice", 0));
  if (args.set_on_cli("stats-level"))
    obj->set("stats", args.get_string("stats-level", ""));
  if (args.set_on_cli("machine"))
    obj->set("machine", args.get_string("machine", ""));
  if (args.set_on_cli("clusters"))
    obj->set("clusters", args.get_u64("clusters", 0));
  if (args.set_on_cli("issue")) obj->set("issue", args.get_u64("issue", 0));
}

template <typename Range>
JsonValue string_array(const Range& items) {
  JsonValue a = JsonValue::array();
  for (const std::string& s : items) a.push_back(s);
  return a;
}

/// Builds the single request line of a one-shot invocation; empty when no
/// action flag was given.
std::string build_one_shot(const ArgParser& args) {
  JsonValue req = JsonValue::object();
  req.set("id", "cli-0");
  if (args.get_flag("ping")) {
    req.set("type", "ping");
  } else if (args.get_flag("stats")) {
    req.set("type", "stats");
  } else if (args.get_flag("shutdown")) {
    req.set("type", "shutdown");
  } else if (args.set_on_cli("experiment")) {
    req.set("type", "experiment");
    req.set("experiment", args.get_string("experiment", ""));
    JsonValue params = JsonValue::object();
    fill_sim_fields(args, &params);
    if (args.set_on_cli("exp-workers"))
      params.set("workers", args.get_u64("exp-workers", 1));
    if (args.set_on_cli("schemes"))
      params.set("schemes",
                 string_array(split(args.get_string("schemes", ""), ',')));
    if (args.set_on_cli("workloads"))
      params.set("workloads",
                 string_array(split(args.get_string("workloads", ""), ',')));
    if (!params.members().empty()) req.set("params", std::move(params));
  } else if (args.set_on_cli("scheme")) {
    req.set("type", "run");
    req.set("scheme", args.get_string("scheme", ""));
    req.set("benchmarks",
            string_array(split(args.get_string("benchmarks", ""), ',')));
    JsonValue config = JsonValue::object();
    fill_sim_fields(args, &config);
    if (!config.members().empty()) req.set("config", std::move(config));
  } else if (args.set_on_cli("fuzz")) {
    req.set("type", "fuzz");
    req.set("cases", args.get_u64("fuzz", 20));
    if (args.set_on_cli("seed")) req.set("seed", args.get_u64("seed", 1));
  } else {
    return {};
  }
  return req.dump(-1);
}

/// Prints one response. --format=json unwraps ok responses to the bare
/// "result" pretty-printed exactly as `cvmt run --format=json` prints its
/// document (indent 2, trailing newline) — the byte-identity bridge.
/// Returns false for error responses.
bool print_response(const std::string& line, const std::string& format) {
  if (format != "json") {
    std::fputs(line.c_str(), stdout);
    std::fputc('\n', stdout);
    JsonValue doc;
    try {
      doc = JsonValue::parse(line);
    } catch (const CheckError&) {
      return false;
    }
    const JsonValue* ok = doc.find("ok");
    return ok != nullptr && ok->kind() == JsonValue::Kind::kBool &&
           ok->as_bool();
  }
  JsonValue doc;
  try {
    doc = JsonValue::parse(line);
  } catch (const CheckError& e) {
    std::fprintf(stderr, "cvmt client: unparseable response: %s\n",
                 e.what());
    return false;
  }
  const JsonValue* ok = doc.find("ok");
  if (ok == nullptr || ok->kind() != JsonValue::Kind::kBool ||
      !ok->as_bool()) {
    std::fprintf(stderr, "%s\n", line.c_str());
    return false;
  }
  const std::string text = doc.get("result").dump(2);
  std::fputs(text.c_str(), stdout);
  std::fputc('\n', stdout);
  return true;
}

// ---- load generator ------------------------------------------------------

struct LoadTotals {
  std::uint64_t sent = 0;
  std::uint64_t answered = 0;
  std::uint64_t ok = 0;
  std::uint64_t errors = 0;
  std::uint64_t rejected_overload = 0;
  std::uint64_t rejected_shutdown = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t unknown_ids = 0;
  std::vector<std::uint64_t> latencies_us;
};

/// One load connection: sends its slice of requests with up to `window`
/// in flight, matching responses by id. Stops sending (but keeps
/// reading) when the connection dies mid-stream — under a server drain
/// that is the expected outcome for the tail of the stream.
void load_connection(std::uint16_t port, const std::string& host,
                     std::size_t conn_index,
                     const std::vector<std::string>& requests,
                     std::size_t window, LoadTotals* totals,
                     std::mutex* totals_mu) {
  LoadTotals local;
  std::map<std::string, SteadyClock::time_point> in_flight;
  try {
    LineConn conn(connect_local(port, host));
    std::size_t next = 0;
    bool send_ok = true;
    while (!in_flight.empty() || (send_ok && next < requests.size())) {
      while (send_ok && next < requests.size() &&
             in_flight.size() < window) {
        const std::string id =
            "c" + std::to_string(conn_index) + "-" + std::to_string(next);
        std::string line = requests[next];
        // Requests come in with the placeholder id "@"; stamp the real
        // one (cheap textual splice keeps request building allocation-
        // free in the hot loop).
        const std::size_t at = line.find("\"@\"");
        CVMT_CHECK_MSG(at != std::string::npos,
                       "load request lost its id placeholder");
        line.replace(at, 3, "\"" + id + "\"");
        if (!conn.send_line(std::move(line))) {
          send_ok = false;
          break;
        }
        in_flight.emplace(id, SteadyClock::now());
        ++local.sent;
        ++next;
      }
      if (in_flight.empty()) break;
      std::string response;
      if (!conn.recv_line(&response)) break;  // server closed: drain tail
      JsonValue doc;
      try {
        doc = JsonValue::parse(response);
      } catch (const CheckError&) {
        ++local.unknown_ids;
        continue;
      }
      const JsonValue* id = doc.find("id");
      if (id == nullptr || id->kind() != JsonValue::Kind::kString) {
        ++local.unknown_ids;
        continue;
      }
      const auto it = in_flight.find(id->as_string());
      if (it == in_flight.end()) {
        // Either never sent (server bug) or already answered (duplicate).
        ++local.duplicates;
        continue;
      }
      local.latencies_us.push_back(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              SteadyClock::now() - it->second)
              .count()));
      in_flight.erase(it);
      ++local.answered;
      const JsonValue* ok = doc.find("ok");
      if (ok != nullptr && ok->kind() == JsonValue::Kind::kBool &&
          ok->as_bool()) {
        ++local.ok;
      } else {
        ++local.errors;
        if (const JsonValue* err = doc.find("error")) {
          const JsonValue* code = err->find("code");
          const std::string name =
              code != nullptr && code->kind() == JsonValue::Kind::kString
                  ? code->as_string()
                  : "";
          if (name == "overloaded") ++local.rejected_overload;
          if (name == "shutting_down") ++local.rejected_shutdown;
        }
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cvmt client: connection %zu: %s\n", conn_index,
                 e.what());
  }
  std::lock_guard<std::mutex> lock(*totals_mu);
  totals->sent += local.sent;
  totals->answered += local.answered;
  totals->ok += local.ok;
  totals->errors += local.errors;
  totals->rejected_overload += local.rejected_overload;
  totals->rejected_shutdown += local.rejected_shutdown;
  totals->duplicates += local.duplicates;
  totals->unknown_ids += local.unknown_ids;
  totals->latencies_us.insert(totals->latencies_us.end(),
                              local.latencies_us.begin(),
                              local.latencies_us.end());
}

std::uint64_t percentile_us(std::vector<std::uint64_t>& sorted, double q) {
  if (sorted.empty()) return 0;
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

/// Builds the request mix for load mode: `load` requests cycling through
/// the `mix` types, ids left as the "@" placeholder for the connection
/// threads to stamp. Run requests rotate scheme x workload so the load
/// exercises the artifact cache across many keys, not one hot entry.
std::vector<std::string> build_load_requests(const ArgParser& args,
                                             std::uint64_t load,
                                             const std::string& mix_spec) {
  static const std::array<std::string_view, 4> kSchemes = {
      "2SC3", "3SCC", "C4", "2CS"};
  const std::vector<std::string> mix = split(mix_spec, ',');
  for (const std::string& m : mix)
    CVMT_CHECK_MSG(m == "run" || m == "experiment" || m == "fuzz" ||
                       m == "ping" || m == "stats",
                   "unknown --mix entry \"" + m + "\"");
  CVMT_CHECK_MSG(!mix.empty(), "--mix must not be empty");
  const std::vector<Workload>& workloads = table2_workloads();

  std::vector<std::string> requests;
  requests.reserve(load);
  for (std::uint64_t i = 0; i < load; ++i) {
    const std::string& kind = mix[i % mix.size()];
    JsonValue req = JsonValue::object();
    req.set("id", "@");
    if (kind == "run") {
      req.set("type", "run");
      req.set("scheme", kSchemes[i % kSchemes.size()]);
      const Workload& w = workloads[i % workloads.size()];
      req.set("benchmarks", string_array(w.benchmarks));
      JsonValue config = JsonValue::object();
      config.set("budget", args.get_u64("budget", 2000));
      if (args.set_on_cli("timeslice"))
        config.set("timeslice", args.get_u64("timeslice", 0));
      req.set("config", std::move(config));
    } else if (kind == "experiment") {
      req.set("type", "experiment");
      req.set("experiment", args.get_string("experiment", "fig9"));
      JsonValue params = JsonValue::object();
      params.set("fast", true);
      req.set("params", std::move(params));
    } else if (kind == "fuzz") {
      req.set("type", "fuzz");
      req.set("cases", std::uint64_t{2});
      req.set("seed", i + 1);
    } else {
      req.set("type", kind);
    }
    requests.push_back(req.dump(-1));
  }
  return requests;
}

int run_load(const ArgParser& args, std::uint16_t port,
             const std::string& host) {
  const std::uint64_t load = args.get_u64("load", 0);
  const auto connections = static_cast<std::size_t>(
      std::max<std::uint64_t>(1, args.get_u64("connections", 4)));
  const auto window = static_cast<std::size_t>(
      std::max<std::uint64_t>(1, args.get_u64("pipeline", 16)));
  const std::vector<std::string> requests =
      build_load_requests(args, load, args.get_string("mix", "run"));

  // Round-robin the requests over the connections so every connection
  // sees the full type mix.
  std::vector<std::vector<std::string>> per_conn(connections);
  for (std::size_t i = 0; i < requests.size(); ++i)
    per_conn[i % connections].push_back(requests[i]);

  LoadTotals totals;
  std::mutex totals_mu;
  const SteadyClock::time_point t0 = SteadyClock::now();
  std::vector<std::thread> threads;
  threads.reserve(connections);
  for (std::size_t c = 0; c < connections; ++c)
    threads.emplace_back(load_connection, port, host, c,
                         std::cref(per_conn[c]), window, &totals,
                         &totals_mu);
  for (std::thread& t : threads) t.join();
  const double wall_s =
      std::chrono::duration<double>(SteadyClock::now() - t0).count();

  std::sort(totals.latencies_us.begin(), totals.latencies_us.end());
  const std::uint64_t unanswered = totals.sent - totals.answered;
  std::printf(
      "sent=%llu answered=%llu ok=%llu errors=%llu overloaded=%llu "
      "shutting_down=%llu unanswered=%llu duplicates=%llu "
      "unknown_ids=%llu\n",
      static_cast<unsigned long long>(totals.sent),
      static_cast<unsigned long long>(totals.answered),
      static_cast<unsigned long long>(totals.ok),
      static_cast<unsigned long long>(totals.errors),
      static_cast<unsigned long long>(totals.rejected_overload),
      static_cast<unsigned long long>(totals.rejected_shutdown),
      static_cast<unsigned long long>(unanswered),
      static_cast<unsigned long long>(totals.duplicates),
      static_cast<unsigned long long>(totals.unknown_ids));
  std::printf(
      "wall_s=%.3f req_per_s=%.1f p50_us=%llu p90_us=%llu p99_us=%llu\n",
      wall_s,
      wall_s > 0 ? static_cast<double>(totals.answered) / wall_s : 0.0,
      static_cast<unsigned long long>(
          percentile_us(totals.latencies_us, 0.50)),
      static_cast<unsigned long long>(
          percentile_us(totals.latencies_us, 0.90)),
      static_cast<unsigned long long>(
          percentile_us(totals.latencies_us, 0.99)));

  // Accounting: every response matched exactly one outstanding request.
  // --allow-shutdown additionally tolerates an unanswered tail (requests
  // that were in flight when a drain shut the connections down — by the
  // drain contract those were never admitted).
  if (totals.duplicates != 0 || totals.unknown_ids != 0) return 1;
  if (!args.get_flag("allow-shutdown") && unanswered != 0) return 1;
  return 0;
}

}  // namespace

int client_main(int argc, const char* const* argv) {
  ArgParser args("cvmt client",
                 "Scripted client for `cvmt serve`: one-shot requests, "
                 "raw request lines (positionals, pipelined), and a "
                 "pipelined load generator with latency percentiles and "
                 "request-id accounting.");
  args.add_u64("port", "N", "server port on --host", "CVMT_SERVE_PORT");
  args.add_string("host", "HOST", "server host (default 127.0.0.1)");
  args.add_string("format", "FMT",
                  "response format: line (raw response) or json (bare "
                  "result, pretty-printed like `cvmt run --format=json`)",
                  {}, {"line", "json"});

  args.add_flag("ping", "liveness probe");
  args.add_flag("stats", "server metrics snapshot");
  args.add_flag("shutdown", "ask the server to drain and exit");
  args.add_string("experiment", "ID", "run a registered experiment");
  args.add_string("scheme", "NAME", "run one simulation of this scheme");
  args.add_string("benchmarks", "A,B,...",
                  "benchmarks of the run (one per thread)");
  args.add_u64("fuzz", "N", "run an N-case differential fuzz sweep");
  args.add_u64("seed", "S", "fuzz sweep seed");

  args.add_flag("fast", "fast preset (short budget/timeslice)");
  args.add_u64("budget", "N", "per-thread instruction budget");
  args.add_u64("timeslice", "N", "OS timeslice in cycles");
  args.add_string("stats-level", "L", "stats level", {}, {"full", "fast"});
  args.add_string("machine", "SPEC", "machine name or .machine file");
  args.add_u64("clusters", "N", "cluster count (vs --machine)");
  args.add_u64("issue", "N", "per-cluster issue width (vs --machine)");
  args.add_string("schemes", "A,B,...", "experiment scheme filter");
  args.add_string("workloads", "A,B,...", "experiment workload filter");
  args.add_u64("exp-workers", "K",
               "experiment-internal sweep workers (default 1 under serve)");

  args.add_u64("load", "N", "load mode: send N mixed requests");
  args.add_string("mix", "T1,T2,...",
                  "load mix of run/experiment/fuzz/ping/stats "
                  "(default run)");
  args.add_u64("connections", "C", "load connections (default 4)");
  args.add_u64("pipeline", "W",
               "max in-flight requests per connection (default 16)");
  args.add_flag("allow-shutdown",
                "load accounting tolerates an unanswered tail cut off by "
                "a server drain");
  args.add_positional("request",
                      "raw request line(s), sent pipelined in order");
  switch (args.parse(argc, argv)) {
    case ArgParser::Outcome::kHelp: return 0;
    case ArgParser::Outcome::kError: return 2;
    case ArgParser::Outcome::kOk: break;
  }

  const std::uint64_t port64 = args.get_u64("port", 0);
  if (port64 == 0 || port64 > 65535) {
    std::fprintf(stderr,
                 "cvmt client: --port is required (or CVMT_SERVE_PORT)\n");
    return 2;
  }
  const auto port = static_cast<std::uint16_t>(port64);
  const std::string host = args.get_string("host", "127.0.0.1");
  const std::string format = args.get_string("format", "line");

  try {
    if (args.get_u64("load", 0) > 0) return run_load(args, port, host);

    std::vector<std::string> lines;
    const std::string one_shot = build_one_shot(args);
    if (!one_shot.empty()) lines.push_back(one_shot);
    for (std::size_t i = 0; i < args.num_positionals(); ++i)
      lines.push_back(args.positional(i));
    if (lines.empty()) {
      std::fprintf(stderr,
                   "cvmt client: nothing to send (try --ping, or see "
                   "--help)\n");
      return 2;
    }

    LineConn conn(connect_local(port, host));
    for (const std::string& line : lines)
      if (!conn.send_line(line)) {
        std::fprintf(stderr, "cvmt client: send failed\n");
        return 1;
      }
    bool all_ok = true;
    for (std::size_t i = 0; i < lines.size(); ++i) {
      std::string response;
      if (!conn.recv_line(&response)) {
        std::fprintf(stderr,
                     "cvmt client: server closed after %zu of %zu "
                     "responses\n",
                     i, lines.size());
        return 1;
      }
      all_ok = print_response(response, format) && all_ok;
    }
    return all_ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cvmt client: %s\n", e.what());
    return 1;
  }
}

}  // namespace cvmt
