#include "serve/protocol.hpp"

#include <algorithm>

#include "core/scheme.hpp"
#include "isa/machine_file.hpp"
#include "support/check.hpp"
#include "trace/benchmark_suite.hpp"

namespace cvmt {

std::string_view to_string(RequestType t) {
  switch (t) {
    case RequestType::kExperiment: return "experiment";
    case RequestType::kRun: return "run";
    case RequestType::kFuzz: return "fuzz";
    case RequestType::kStats: return "stats";
    case RequestType::kPing: return "ping";
    case RequestType::kShutdown: return "shutdown";
  }
  return "?";
}

std::string_view serve_error_code_name(ServeError e) {
  switch (e) {
    case ServeError::kBadJson: return "bad_json";
    case ServeError::kBadRequest: return "bad_request";
    case ServeError::kUnknownType: return "unknown_type";
    case ServeError::kUnknownExperiment: return "unknown_experiment";
    case ServeError::kOversized: return "oversized";
    case ServeError::kOverloaded: return "overloaded";
    case ServeError::kShuttingDown: return "shutting_down";
    case ServeError::kInternal: return "internal";
  }
  return "?";
}

namespace {

/// Upper bound on one fuzz request: the sweep runs on a single worker
/// slot, and admission control reasons about request granularity — a
/// giant sweep belongs in `cvmt fuzz`, not a daemon request.
constexpr std::uint64_t kMaxFuzzCases = 10'000;

[[noreturn]] void bad(const JsonValue& id, const std::string& message) {
  throw RequestError(ServeError::kBadRequest, message, id);
}

std::uint64_t get_u64_field(const JsonValue& id, const JsonValue& obj,
                            std::string_view key, std::uint64_t fallback,
                            std::uint64_t min = 0) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) return fallback;
  if (v->kind() != JsonValue::Kind::kInt || v->as_int() < 0)
    bad(id, "field \"" + std::string(key) +
                "\" must be a non-negative integer");
  const auto u = static_cast<std::uint64_t>(v->as_int());
  if (u < min)
    bad(id, "field \"" + std::string(key) + "\" must be >= " +
                std::to_string(min));
  return u;
}

std::string get_string_field(const JsonValue& id, const JsonValue& obj,
                             std::string_view key,
                             std::string fallback = {}) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) return fallback;
  if (v->kind() != JsonValue::Kind::kString)
    bad(id, "field \"" + std::string(key) + "\" must be a string");
  return v->as_string();
}

bool get_bool_field(const JsonValue& id, const JsonValue& obj,
                    std::string_view key, bool fallback) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) return fallback;
  if (v->kind() != JsonValue::Kind::kBool)
    bad(id, "field \"" + std::string(key) + "\" must be a boolean");
  return v->as_bool();
}

std::vector<std::string> get_string_array(const JsonValue& id,
                                          const JsonValue& obj,
                                          std::string_view key) {
  std::vector<std::string> out;
  const JsonValue* v = obj.find(key);
  if (v == nullptr) return out;
  if (v->kind() != JsonValue::Kind::kArray)
    bad(id, "field \"" + std::string(key) + "\" must be an array");
  for (std::size_t i = 0; i < v->size(); ++i) {
    if (v->at(i).kind() != JsonValue::Kind::kString)
      bad(id, "field \"" + std::string(key) +
                  "\" must be an array of strings");
    out.push_back(v->at(i).as_string());
  }
  return out;
}

void reject_unknown_keys(const JsonValue& id, const JsonValue& obj,
                         std::string_view where,
                         std::initializer_list<std::string_view> known) {
  for (const auto& member : obj.members()) {
    if (std::find(known.begin(), known.end(), member.first) == known.end())
      bad(id, "unknown field \"" + member.first + "\" in " +
                  std::string(where));
  }
}

/// Applies the shared simulation knobs (budget/timeslice/stats/machine)
/// of a params or config object onto `sim`. Resolution is defaults +
/// request only (never the daemon's environment); the layering mirrors
/// ExperimentParams::resolve so an experiment request reproduces the
/// bytes of the equivalent `cvmt run` invocation.
void apply_sim_fields(const JsonValue& id, const JsonValue& obj,
                      SimConfig& sim, std::string* machine_spec) {
  if (get_bool_field(id, obj, "fast", false)) {
    sim.instruction_budget = kFastInstructionBudget;
    sim.timeslice_cycles = kFastTimesliceCycles;
  }
  sim.instruction_budget =
      get_u64_field(id, obj, "budget", sim.instruction_budget, 1);
  sim.timeslice_cycles =
      get_u64_field(id, obj, "timeslice", sim.timeslice_cycles, 1);

  const std::string stats = get_string_field(id, obj, "stats");
  if (stats == "full") {
    sim.stats = StatsLevel::kFull;
  } else if (stats == "fast" || stats.empty()) {
    sim.stats = StatsLevel::kFast;
  } else {
    bad(id, "field \"stats\" must be \"full\" or \"fast\"");
  }

  const std::string machine = get_string_field(id, obj, "machine");
  const std::uint64_t clusters = get_u64_field(id, obj, "clusters", 0);
  const std::uint64_t issue = get_u64_field(id, obj, "issue", 0);
  if (!machine.empty()) {
    if (clusters != 0 || issue != 0)
      bad(id, "\"machine\" conflicts with \"clusters\"/\"issue\"");
    try {
      const MachineDescription md = resolve_machine(machine);
      sim.machine = md.machine;
      sim.mem = md.mem;
      sim.switch_policy = md.switch_policy;
    } catch (const CheckError& e) {
      bad(id, e.what());
    }
    if (machine_spec != nullptr) *machine_spec = machine;
  } else if (clusters != 0 || issue != 0) {
    try {
      sim.machine = MachineConfig::clustered(
          static_cast<int>(clusters ? clusters : 4),
          static_cast<int>(issue ? issue : 4));
    } catch (const CheckError& e) {
      bad(id, e.what());
    }
  }
}

ExperimentParams params_from_json(const JsonValue& id,
                                  const JsonValue& obj) {
  reject_unknown_keys(id, obj, "\"params\"",
                      {"fast", "budget", "timeslice", "stats", "machine",
                       "clusters", "issue", "schemes", "workloads",
                       "workers", "lanes"});
  ExperimentParams p;
  p.fast = get_bool_field(id, obj, "fast", false);
  apply_sim_fields(id, obj, p.cfg.sim, &p.machine_spec);

  // Inner fan-out defaults to 1: the daemon's parallelism is the worker
  // pool, and every worker spawning its own full-width batch pool would
  // thrash the machine. Requests may override (0 = all cores) when the
  // server is known to be otherwise idle.
  p.cfg.batch.workers = static_cast<unsigned>(std::min<std::uint64_t>(
      get_u64_field(id, obj, "workers", 1), 1024));
  const std::uint64_t lanes = get_u64_field(id, obj, "lanes", 1, 1);
  if (lanes > 4096 || (lanes & (lanes - 1)) != 0)
    bad(id, "field \"lanes\" must be a power of two in [1, 4096]");
  p.cfg.batch.lanes = static_cast<unsigned>(lanes);

  p.schemes = get_string_array(id, obj, "schemes");
  for (const std::string& s : p.schemes) {
    try {
      (void)Scheme::parse(s);
    } catch (const CheckError& e) {
      bad(id, "bad scheme \"" + s + "\": " + e.what());
    }
  }
  p.workloads = get_string_array(id, obj, "workloads");
  for (const std::string& w : p.workloads) {
    bool known = false;
    for (const Workload& t2 : table2_workloads())
      known = known || t2.ilp_combo == w;
    if (!known)
      bad(id, "unknown workload \"" + w +
                  "\" (expected a Table 2 ILP combo such as LLHH)");
  }
  return p;
}

}  // namespace

Request parse_request(std::string_view line) {
  JsonValue doc;
  try {
    doc = JsonValue::parse(line);
  } catch (const CheckError& e) {
    throw RequestError(ServeError::kBadJson, e.what());
  }
  if (doc.kind() != JsonValue::Kind::kObject)
    throw RequestError(ServeError::kBadJson,
                       "request must be a JSON object");

  Request req;
  if (const JsonValue* id = doc.find("id")) req.id = *id;

  const JsonValue* type = doc.find("type");
  if (type == nullptr || type->kind() != JsonValue::Kind::kString)
    bad(req.id, "request needs a string \"type\" field");
  const std::string& t = type->as_string();

  if (t == "ping" || t == "stats" || t == "shutdown") {
    reject_unknown_keys(req.id, doc, "request", {"id", "type"});
    req.type = t == "ping"     ? RequestType::kPing
               : t == "stats"  ? RequestType::kStats
                               : RequestType::kShutdown;
    return req;
  }

  if (t == "experiment") {
    reject_unknown_keys(req.id, doc, "request",
                        {"id", "type", "experiment", "params"});
    req.type = RequestType::kExperiment;
    req.experiment = get_string_field(req.id, doc, "experiment");
    if (req.experiment.empty())
      bad(req.id, "experiment request needs an \"experiment\" id");
    if (const JsonValue* params = doc.find("params")) {
      if (params->kind() != JsonValue::Kind::kObject)
        bad(req.id, "field \"params\" must be an object");
      req.params = params_from_json(req.id, *params);
    } else {
      req.params = params_from_json(req.id, JsonValue::object());
    }
    return req;
  }

  if (t == "run") {
    reject_unknown_keys(req.id, doc, "request",
                        {"id", "type", "scheme", "benchmarks", "config"});
    req.type = RequestType::kRun;
    req.scheme = get_string_field(req.id, doc, "scheme");
    if (req.scheme.empty())
      bad(req.id, "run request needs a \"scheme\"");
    try {
      (void)Scheme::parse(req.scheme);
    } catch (const CheckError& e) {
      bad(req.id, "bad scheme \"" + req.scheme + "\": " + e.what());
    }
    req.benchmarks = get_string_array(req.id, doc, "benchmarks");
    if (req.benchmarks.empty())
      bad(req.id, "run request needs a non-empty \"benchmarks\" array");
    for (const std::string& b : req.benchmarks) {
      try {
        (void)profile_by_name(b);
      } catch (const CheckError&) {
        bad(req.id, "unknown benchmark \"" + b + "\"");
      }
    }
    // The serve default matches the experiment layer's sweeps (kFast),
    // not the bare-library default (kFull); "stats":"full" opts in.
    req.run_config.stats = StatsLevel::kFast;
    if (const JsonValue* config = doc.find("config")) {
      if (config->kind() != JsonValue::Kind::kObject)
        bad(req.id, "field \"config\" must be an object");
      reject_unknown_keys(req.id, *config, "\"config\"",
                          {"fast", "budget", "timeslice", "stats",
                           "machine", "clusters", "issue"});
      apply_sim_fields(req.id, *config, req.run_config, nullptr);
    }
    return req;
  }

  if (t == "fuzz") {
    reject_unknown_keys(req.id, doc, "request",
                        {"id", "type", "cases", "seed"});
    req.type = RequestType::kFuzz;
    req.fuzz_cases = get_u64_field(req.id, doc, "cases", 20, 1);
    if (req.fuzz_cases > kMaxFuzzCases)
      bad(req.id, "field \"cases\" must be <= " +
                      std::to_string(kMaxFuzzCases) +
                      " per request (use `cvmt fuzz` for deep sweeps)");
    req.fuzz_seed = get_u64_field(req.id, doc, "seed", 1);
    return req;
  }

  throw RequestError(ServeError::kUnknownType,
                     "unknown request type \"" + t + "\"", req.id);
}

std::string response_line(const JsonValue& response) {
  return response.dump(-1);
}

std::string ok_response(const JsonValue& id, JsonValue result) {
  JsonValue r = JsonValue::object();
  r.set("id", id);
  r.set("ok", true);
  r.set("result", std::move(result));
  return response_line(r);
}

std::string error_response(const JsonValue& id, ServeError e,
                           std::string_view message,
                           std::uint64_t retry_after_ms) {
  JsonValue err = JsonValue::object();
  err.set("code", serve_error_code_name(e));
  err.set("message", message);
  if (e == ServeError::kOverloaded)
    err.set("retry_after_ms", retry_after_ms);
  JsonValue r = JsonValue::object();
  r.set("id", id);
  r.set("ok", false);
  r.set("error", std::move(err));
  return response_line(r);
}

}  // namespace cvmt
