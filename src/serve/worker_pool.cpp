#include "serve/worker_pool.hpp"

#include <cstdio>

#include "support/check.hpp"

namespace cvmt {

ServeWorkerPool::ServeWorkerPool(std::size_t workers, std::size_t capacity,
                                 ArtifactCache& cache)
    : cache_(cache), capacity_(capacity) {
  CVMT_CHECK_MSG(workers >= 1, "serve pool needs at least one worker");
  CVMT_CHECK_MSG(capacity >= 1, "serve queue needs capacity >= 1");
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i)
    threads_.emplace_back(&ServeWorkerPool::worker_loop, this, i);
}

ServeWorkerPool::~ServeWorkerPool() { drain(); }

ServeWorkerPool::Submit ServeWorkerPool::try_submit(Job job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return Submit::kClosed;
    if (queue_.size() >= capacity_) return Submit::kFull;
    queue_.push_back(std::move(job));
  }
  work_cv_.notify_one();
  return Submit::kAccepted;
}

std::size_t ServeWorkerPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void ServeWorkerPool::drain() {
  // First caller performs the drain; concurrent callers block on the
  // same once-flag until it completes, so "drain returned" always means
  // "queue empty and workers joined" for every caller.
  std::call_once(drain_once_, [this] {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& t : threads_) t.join();
    std::lock_guard<std::mutex> lock(mu_);
    CVMT_CHECK_MSG(queue_.empty(), "drained pool left jobs behind");
    drained_ = true;
  });
}

void ServeWorkerPool::worker_loop(std::size_t index) {
  // One warm session per worker for the pool's whole lifetime: compiled
  // artifacts come from the shared cache, SimInstances stay local and
  // reset-in-place across requests.
  SimSession session(cache_);
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return closed_ || !queue_.empty(); });
      if (queue_.empty()) return;  // closed_ && empty: clean drain exit
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      job(index, session);
    } catch (const std::exception& e) {
      // Jobs wrap their own error handling (the server responds with a
      // structured "internal" error); this is the last line of defense
      // keeping a worker thread alive no matter what escapes.
      std::fprintf(stderr, "cvmt serve: worker %zu: uncaught: %s\n",
                   index, e.what());
    }
  }
}

}  // namespace cvmt
