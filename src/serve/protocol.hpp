// The serve wire protocol: line-delimited JSON over TCP.
//
// Each request is one compact JSON object on one line (max
// kMaxRequestLine bytes), each response one JSON object on one line.
// Responses carry the request's "id" verbatim, so clients may pipeline
// arbitrarily many requests per connection and match responses by id —
// the server writes a response as soon as its job finishes, which is NOT
// necessarily request order.
//
//   request  := {"id": <any json>, "type": <type>, ...type fields}
//   type     := "experiment" | "run" | "fuzz" | "stats" | "ping"
//             | "shutdown"
//   response := {"id": <echoed>, "ok": true,  "result": {...}}
//             | {"id": <echoed>, "ok": false, "error":
//                  {"code": <code>, "message": <text>
//                   [, "retry_after_ms": N]}}
//
// Error codes are a closed set (serve_error_code_name); "overloaded"
// carries retry_after_ms — the admission queue was full and the client
// should back off, nothing was executed. The full grammar, the
// backpressure policy and the drain semantics live in DESIGN.md §11.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>

#include "exp/params.hpp"
#include "support/json.hpp"

namespace cvmt {

/// Hard cap on one request line. A line that exceeds this is answered
/// with an "oversized" error and the connection is closed (the framing
/// cannot be resynchronized once a line is abandoned mid-way).
inline constexpr std::size_t kMaxRequestLine = 1 << 20;

enum class RequestType : std::uint8_t {
  kExperiment,  ///< run a registered experiment, result = its JSON
  kRun,         ///< one simulation: scheme + benchmarks + config
  kFuzz,        ///< a bounded differential-fuzz sweep
  kStats,       ///< server metrics snapshot (handled inline, never queued)
  kPing,        ///< liveness probe (inline)
  kShutdown,    ///< begin graceful drain (inline; ack precedes the drain)
};

[[nodiscard]] std::string_view to_string(RequestType t);

enum class ServeError : std::uint8_t {
  kBadJson,            ///< request line is not a JSON object
  kBadRequest,         ///< missing/invalid fields, bad scheme/workload...
  kUnknownType,        ///< "type" not in the set above
  kUnknownExperiment,  ///< "experiment" id not in the registry
  kOversized,          ///< request line exceeded kMaxRequestLine
  kOverloaded,         ///< admission queue full; retry_after_ms attached
  kShuttingDown,       ///< server draining; request was not admitted
  kInternal,           ///< unexpected exception while executing
};

[[nodiscard]] std::string_view serve_error_code_name(ServeError e);

/// One parsed request. `id` is echoed into the response verbatim (null
/// when the request had none — including unparseable lines).
struct Request {
  JsonValue id;  // any JSON value; null when absent
  RequestType type = RequestType::kPing;

  // kExperiment
  std::string experiment;
  ExperimentParams params;

  // kRun
  std::string scheme;
  std::vector<std::string> benchmarks;
  SimConfig run_config;

  // kFuzz
  std::uint64_t fuzz_cases = 0;
  std::uint64_t fuzz_seed = 1;
};

/// Thrown by parse_request: the error class plus the client-facing
/// message, plus the request id when one could be extracted before the
/// failure (so even a rejected request gets an addressable response).
class RequestError : public std::runtime_error {
 public:
  RequestError(ServeError code, const std::string& message,
               JsonValue id = {})
      : std::runtime_error(message), code_(code), id_(std::move(id)) {}
  [[nodiscard]] ServeError code() const { return code_; }
  [[nodiscard]] const JsonValue& id() const { return id_; }

 private:
  ServeError code_;
  JsonValue id_;
};

/// Parses one request line; throws RequestError on malformed input.
/// Parameter resolution is self-contained: defaults + request fields
/// only — the daemon's CVMT_* environment is deliberately NOT consulted,
/// so identical requests yield identical results on any server.
[[nodiscard]] Request parse_request(std::string_view line);

// --- response builders (compact single-line JSON, no trailing \n) --------

[[nodiscard]] std::string ok_response(const JsonValue& id,
                                      JsonValue result);
[[nodiscard]] std::string error_response(const JsonValue& id, ServeError e,
                                         std::string_view message,
                                         std::uint64_t retry_after_ms = 0);

/// Serializes any response object to its wire form (one line).
[[nodiscard]] std::string response_line(const JsonValue& response);

}  // namespace cvmt
