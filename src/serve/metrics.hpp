// Server-side observability for `cvmt serve`: admission and completion
// counters, queue high-water, per-worker busy time, and request latency
// histograms — all snapshotted into the `stats` response.
//
// Latency histograms reuse the existing Histogram type with power-of-two
// microsecond buckets: bucket i counts requests with latency in
// [2^(i-1), 2^i) microseconds (bucket 0 is < 1us, the last bucket
// clamps). Percentiles reported from the histogram are bucket upper
// bounds — intentionally coarse; exact per-request latencies belong to
// the client side (cvmt client --load and bench_serve measure there).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "support/json.hpp"
#include "support/stats.hpp"

namespace cvmt {

/// Latency histogram over power-of-two microsecond buckets.
class LatencyHistogram {
 public:
  /// 22 buckets: <1us up to >=2^20us (~1s) with the last bucket clamping.
  static constexpr std::size_t kBuckets = 22;

  LatencyHistogram() : h_(kBuckets) {}

  void record_us(std::uint64_t us);

  [[nodiscard]] const Histogram& histogram() const { return h_; }
  /// Upper bound (us) of the bucket holding quantile `q` in [0,1];
  /// 0 when empty.
  [[nodiscard]] std::uint64_t quantile_upper_us(double q) const;

  /// {"count", "p50_us", "p90_us", "p99_us", "buckets": [...]} — buckets
  /// trailing-trimmed so quiet servers emit short arrays.
  [[nodiscard]] JsonValue to_json() const;

 private:
  Histogram h_;
};

/// One worker slot's lifetime accounting.
struct WorkerStat {
  std::uint64_t jobs = 0;
  std::uint64_t busy_us = 0;
};

/// All serve metrics behind one mutex. Contention is irrelevant at
/// request granularity (every touch is a handful of integer updates
/// bracketing a simulation run).
class ServeMetrics {
 public:
  explicit ServeMetrics(std::size_t workers) : workers_(workers) {}

  void on_received() { count(&received_); }
  void on_rejected_overload() { count(&rejected_overload_); }
  void on_rejected_draining() { count(&rejected_draining_); }
  void on_protocol_error() { count(&protocol_errors_); }
  void on_inline_served() { count(&inline_served_); }

  void on_queue_depth(std::size_t depth);

  /// Completion of one queued job on worker `worker`: total latency from
  /// admission to response written, and the execution slice of it.
  void on_job_done(std::size_t worker, std::string_view type,
                   bool ok, std::uint64_t latency_us,
                   std::uint64_t exec_us);

  /// Mean execution time of completed jobs (us); the backpressure
  /// retry-after estimate derives from this. 0 when nothing completed.
  [[nodiscard]] std::uint64_t mean_exec_us() const;

  /// The complete stats block of the `stats` response (everything except
  /// the fields only the server knows: queue capacity, cache counters,
  /// uptime — the caller merges those in).
  [[nodiscard]] JsonValue to_json() const;

 private:
  void count(std::uint64_t* c) {
    std::lock_guard<std::mutex> lock(mu_);
    ++*c;
  }

  mutable std::mutex mu_;
  std::uint64_t received_ = 0;
  std::uint64_t rejected_overload_ = 0;
  std::uint64_t rejected_draining_ = 0;
  std::uint64_t protocol_errors_ = 0;
  std::uint64_t inline_served_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t queue_high_water_ = 0;
  std::uint64_t exec_us_total_ = 0;
  std::vector<WorkerStat> workers_;
  LatencyHistogram latency_all_;
  LatencyHistogram latency_experiment_;
  LatencyHistogram latency_run_;
  LatencyHistogram latency_fuzz_;
};

}  // namespace cvmt
