// The serve layer's bounded worker pool: an explicit admission queue in
// front of K worker threads, each owning one warm SimSession bound to the
// shared process-wide ArtifactCache.
//
// The shape follows clustermerge's MergeExecutor (SNIPPETS.md §3):
// a concurrent queue feeding long-lived worker threads, per-item
// completion signalled by the job itself (here: the worker writes the
// response to the job's connection), and a clean drain on shutdown — stop
// admission, let the workers empty the queue, join. Two deliberate
// differences: admission is non-blocking with an explicit kFull outcome
// (the server converts it into an "overloaded" + retry-after response
// instead of stalling the connection reader), and drain() is an explicit
// idempotent operation rather than destructor-only, because the server
// must finish the drain *before* it closes client connections — that
// ordering is what makes "zero lost jobs" true.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/session.hpp"

namespace cvmt {

class ServeWorkerPool {
 public:
  /// A job runs on one worker thread; it receives the worker index (for
  /// metrics) and the worker's own SimSession (never shared between
  /// workers — SimSession is not thread-safe; the ArtifactCache behind
  /// it is, and is shared by all).
  using Job = std::function<void(std::size_t worker, SimSession& session)>;

  enum class Submit : std::uint8_t {
    kAccepted,  ///< queued; the pool guarantees execution (even on drain)
    kFull,      ///< queue at capacity — backpressure; nothing happened
    kClosed,    ///< draining/closed; nothing happened
  };

  /// `workers` threads (>=1) over a queue of `capacity` (>=1) pending
  /// jobs; artifacts shared through `cache`.
  ServeWorkerPool(std::size_t workers, std::size_t capacity,
                  ArtifactCache& cache);
  ServeWorkerPool(const ServeWorkerPool&) = delete;
  ServeWorkerPool& operator=(const ServeWorkerPool&) = delete;
  ~ServeWorkerPool();

  [[nodiscard]] Submit try_submit(Job job);

  /// Stops admission, waits for every queued job to execute, joins the
  /// workers. Idempotent; afterwards try_submit returns kClosed.
  void drain();

  [[nodiscard]] std::size_t num_workers() const { return threads_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t queue_depth() const;

 private:
  void worker_loop(std::size_t index);

  ArtifactCache& cache_;
  const std::size_t capacity_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<Job> queue_;
  bool closed_ = false;

  std::vector<std::thread> threads_;
  std::once_flag drain_once_;
  bool drained_ = false;  ///< guarded by mu_; drain() ran to completion
};

}  // namespace cvmt
