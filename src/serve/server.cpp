#include "serve/server.hpp"

#include <array>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <thread>
#include <utility>

#include "serve/protocol.hpp"
#include "serve/router.hpp"
#include "support/args.hpp"
#include "support/check.hpp"
#include "support/version.hpp"

namespace cvmt {
namespace {

using SteadyClock = std::chrono::steady_clock;

std::uint64_t elapsed_us(SteadyClock::time_point since) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          SteadyClock::now() - since)
          .count());
}

}  // namespace

void ServeServer::Connection::send_line(std::string_view line) {
  std::lock_guard<std::mutex> lock(write_mu);
  if (!alive.load()) return;
  std::string framed(line);
  framed += '\n';
  if (!stream.send_all(framed)) alive.store(false);
}

ServeServer::ServeServer(ServeConfig config, ArtifactCache& cache)
    : config_(config), cache_(cache) {}

ServeServer::~ServeServer() {
  if (started_) stop();
}

void ServeServer::start() {
  CVMT_CHECK_MSG(!started_, "ServeServer::start() called twice");
  std::size_t workers = config_.workers;
  if (workers == 0) {
    workers = std::thread::hardware_concurrency();
    if (workers == 0) workers = 1;
  }
  pool_ = std::make_unique<ServeWorkerPool>(workers, config_.queue_capacity,
                                            cache_);
  metrics_ = std::make_unique<ServeMetrics>(workers);
  listener_ = TcpListener::bind_local(config_.port);
  port_ = listener_.port();
  started_at_ = SteadyClock::now();
  started_ = true;
  accept_thread_ = std::thread(&ServeServer::accept_loop, this);
  if (config_.verbose)
    std::fprintf(stderr,
                 "cvmt serve: listening on 127.0.0.1:%u (%zu workers, "
                 "queue %zu) — %s\n",
                 static_cast<unsigned>(port_), workers,
                 config_.queue_capacity, version_string().c_str());
}

void ServeServer::request_stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    stop_requested_ = true;
  }
  stop_cv_.notify_all();
}

bool ServeServer::wait_stop_requested_for(std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(stop_mu_);
  return stop_cv_.wait_for(lock, timeout,
                           [this] { return stop_requested_; });
}

void ServeServer::stop() {
  request_stop();
  std::call_once(stop_once_, [this] {
    // The drain ordering is the whole contract: (1) no new work — stop
    // accepting connections and flip draining_ so readers answer
    // "shutting_down"; (2) every admitted job completes and its response
    // is written (pool drain); (3) only then shut the client connections
    // down and join the readers. A job admitted before (1) is never lost,
    // and nothing re-runs, so nothing is duplicated.
    draining_.store(true);
    listener_.close();
    if (accept_thread_.joinable()) accept_thread_.join();
    if (pool_) pool_->drain();

    std::vector<std::shared_ptr<Connection>> conns;
    std::vector<std::thread> readers;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns = conns_;
      readers = std::move(readers_);
    }
    // Read-side shutdown only: blocked readers wake with EOF, readers
    // mid-request still deliver their (rejection) responses — every
    // request a reader counted as received gets its one response out
    // before the write side goes down below.
    for (const std::shared_ptr<Connection>& c : conns)
      c->stream.shutdown_read();
    for (std::thread& t : readers)
      if (t.joinable()) t.join();
    for (const std::shared_ptr<Connection>& c : conns) {
      c->alive.store(false);
      c->stream.shutdown_both();
    }
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.clear();
    }
    if (config_.verbose)
      std::fprintf(stderr, "cvmt serve: drained — %s\n",
                   stats_json().get("requests").dump(-1).c_str());
  });
}

void ServeServer::accept_loop() {
  for (;;) {
    TcpStream stream = listener_.accept_one();
    if (!stream.valid()) return;  // listener closed: shutdown
    auto conn = std::make_shared<Connection>(std::move(stream));
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.push_back(conn);
    readers_.emplace_back(&ServeServer::connection_loop, this, conn);
  }
}

void ServeServer::connection_loop(const std::shared_ptr<Connection>& conn) {
  std::string buf;
  std::array<char, 16384> chunk;
  for (;;) {
    std::size_t pos;
    while ((pos = buf.find('\n')) != std::string::npos) {
      if (pos > kMaxRequestLine) {
        metrics_->on_received();
        metrics_->on_protocol_error();
        conn->send_line(error_response(JsonValue(), ServeError::kOversized,
                                       "request line exceeds " +
                                           std::to_string(kMaxRequestLine) +
                                           " bytes"));
        conn->alive.store(false);
        conn->stream.shutdown_both();
        return;
      }
      std::string_view line(buf.data(), pos);
      if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
      if (!line.empty()) handle_line(conn, line);
      buf.erase(0, pos + 1);
    }
    if (buf.size() > kMaxRequestLine) {
      // More than a line's worth buffered with no terminator in sight:
      // the framing cannot recover, so answer and hang up.
      metrics_->on_received();
      metrics_->on_protocol_error();
      conn->send_line(error_response(JsonValue(), ServeError::kOversized,
                                     "request line exceeds " +
                                         std::to_string(kMaxRequestLine) +
                                         " bytes"));
      conn->alive.store(false);
      conn->stream.shutdown_both();
      return;
    }
    const long n = conn->stream.recv_some(chunk.data(), chunk.size());
    if (n <= 0) {
      // Orderly close or error — either way the client is gone. Any jobs
      // it admitted still run; their responses drop on the dead
      // connection without wedging a worker.
      conn->alive.store(false);
      return;
    }
    buf.append(chunk.data(), static_cast<std::size_t>(n));
  }
}

void ServeServer::handle_line(const std::shared_ptr<Connection>& conn,
                              std::string_view line) {
  metrics_->on_received();
  Request req;
  try {
    req = parse_request(line);
  } catch (const RequestError& e) {
    metrics_->on_protocol_error();
    conn->send_line(error_response(e.id(), e.code(), e.what()));
    return;
  }
  switch (req.type) {
    case RequestType::kPing: {
      JsonValue result = JsonValue::object();
      result.set("pong", true);
      result.set("version", version_string());
      conn->send_line(ok_response(req.id, std::move(result)));
      metrics_->on_inline_served();
      return;
    }
    case RequestType::kStats: {
      conn->send_line(ok_response(req.id, stats_json()));
      metrics_->on_inline_served();
      return;
    }
    case RequestType::kShutdown: {
      // Ack first (the requester deserves a response), then flip
      // draining_ so every later work request on any connection is
      // rejected deterministically, then wake whoever owns the server.
      JsonValue result = JsonValue::object();
      result.set("draining", true);
      conn->send_line(ok_response(req.id, std::move(result)));
      metrics_->on_inline_served();
      draining_.store(true);
      request_stop();
      return;
    }
    case RequestType::kExperiment:
    case RequestType::kRun:
    case RequestType::kFuzz:
      submit_work(conn, std::move(req));
      return;
  }
}

void ServeServer::submit_work(const std::shared_ptr<Connection>& conn,
                              Request req) {
  if (draining_.load()) {
    metrics_->on_rejected_draining();
    conn->send_line(error_response(req.id, ServeError::kShuttingDown,
                                   "server is draining; request not "
                                   "admitted"));
    return;
  }
  const SteadyClock::time_point admitted_at = SteadyClock::now();
  const JsonValue req_id = req.id;  // the job consumes req; keep the id
  ServeWorkerPool::Job job =
      [this, conn, req = std::move(req), admitted_at](
          std::size_t worker, SimSession& session) {
        const SteadyClock::time_point exec_start = SteadyClock::now();
        std::string response;
        bool ok = true;
        try {
          response = ok_response(req.id, execute_request(req, session));
        } catch (const RequestError& e) {
          ok = false;
          response = error_response(e.id(), e.code(), e.what());
        } catch (const std::exception& e) {
          ok = false;
          response = error_response(req.id, ServeError::kInternal, e.what());
        }
        // Record before writing: a client that sees the response and
        // immediately asks for stats must find this job counted.
        metrics_->on_job_done(worker, to_string(req.type), ok,
                              elapsed_us(admitted_at),
                              elapsed_us(exec_start));
        conn->send_line(response);
      };
  switch (pool_->try_submit(std::move(job))) {
    case ServeWorkerPool::Submit::kAccepted:
      metrics_->on_queue_depth(pool_->queue_depth());
      return;
    case ServeWorkerPool::Submit::kFull:
      metrics_->on_rejected_overload();
      conn->send_line(error_response(
          req_id, ServeError::kOverloaded,
          "admission queue full; retry after the suggested backoff",
          retry_after_ms_estimate()));
      return;
    case ServeWorkerPool::Submit::kClosed:
      metrics_->on_rejected_draining();
      conn->send_line(error_response(req_id, ServeError::kShuttingDown,
                                     "server is draining; request not "
                                     "admitted"));
      return;
  }
}

std::uint64_t ServeServer::retry_after_ms_estimate() const {
  // Rough expected wait for a queue slot: a full queue's worth of work
  // spread over the workers, at the observed mean execution time. Floors
  // at 1ms so clients always get a non-zero backoff.
  const std::uint64_t mean_us = metrics_->mean_exec_us();
  const std::uint64_t waves =
      pool_->capacity() / pool_->num_workers() + 1;
  const std::uint64_t ms = mean_us * waves / 1000;
  return ms < 1 ? 1 : ms;
}

JsonValue ServeServer::stats_json() const {
  JsonValue out = JsonValue::object();
  out.set("version", version_string());
  out.set("uptime_ms", elapsed_us(started_at_) / 1000);
  out.set("draining", draining_.load());

  const JsonValue m = metrics_->to_json();
  out.set("requests", m.get("requests"));

  JsonValue queue = JsonValue::object();
  queue.set("depth", static_cast<std::uint64_t>(pool_->queue_depth()));
  queue.set("capacity", static_cast<std::uint64_t>(pool_->capacity()));
  queue.set("high_water", m.get("queue_high_water"));
  out.set("queue", std::move(queue));

  out.set("workers", m.get("workers"));

  const ArtifactCacheStats cs = cache_.stats();
  JsonValue cache = JsonValue::object();
  cache.set("artifacts", static_cast<std::uint64_t>(cache_.size()));
  cache.set("hits", cs.hits());
  cache.set("misses", cs.misses());
  cache.set("hit_rate", cs.hit_rate());
  JsonValue kinds = JsonValue::object();
  JsonValue schemes = JsonValue::object();
  schemes.set("hits", cs.scheme_hits);
  schemes.set("misses", cs.scheme_misses);
  kinds.set("schemes", std::move(schemes));
  JsonValue programs = JsonValue::object();
  programs.set("hits", cs.program_hits);
  programs.set("misses", cs.program_misses);
  kinds.set("programs", std::move(programs));
  JsonValue workloads = JsonValue::object();
  workloads.set("hits", cs.workload_hits);
  workloads.set("misses", cs.workload_misses);
  kinds.set("workloads", std::move(workloads));
  cache.set("kinds", std::move(kinds));
  out.set("cache", std::move(cache));

  out.set("latency", m.get("latency"));
  return out;
}

namespace {

// SIGTERM/SIGINT land here; the serve_main loop polls the flag. Plain
// sig_atomic_t keeps the handler async-signal-safe — no condition
// variables, no locks.
volatile std::sig_atomic_t g_serve_signal = 0;

void serve_signal_handler(int) { g_serve_signal = 1; }

}  // namespace

int serve_main(int argc, const char* const* argv) {
  ArgParser args("cvmt serve",
                 "Long-lived experiment daemon: line-delimited JSON over "
                 "TCP with a warm artifact cache and a bounded worker "
                 "pool. See DESIGN.md §11 for the protocol.");
  args.add_u64("port", "N",
               "TCP port on 127.0.0.1 (0 picks an ephemeral port and "
               "prints it)",
               "CVMT_SERVE_PORT");
  args.add_u64("workers", "K", "worker threads (0 = all hardware cores)",
               "CVMT_SERVE_WORKERS");
  args.add_u64("queue", "N", "admission queue capacity",
               "CVMT_SERVE_QUEUE");
  args.add_string("port-file", "FILE",
                  "write the bound port to FILE once listening (for "
                  "scripts using --port=0)");
  args.add_flag("quiet", "suppress the startup/drain log lines");
  switch (args.parse(argc, argv)) {
    case ArgParser::Outcome::kHelp: return 0;
    case ArgParser::Outcome::kError: return 2;
    case ArgParser::Outcome::kOk: break;
  }

  const std::uint64_t port = args.get_u64("port", 0);
  if (port > 65535) {
    std::fprintf(stderr, "cvmt serve: --port must be <= 65535\n");
    return 2;
  }
  ServeConfig config;
  config.port = static_cast<std::uint16_t>(port);
  config.workers = static_cast<std::size_t>(args.get_u64("workers", 0));
  config.queue_capacity =
      static_cast<std::size_t>(args.get_u64("queue", 256));
  if (config.queue_capacity == 0) {
    std::fprintf(stderr, "cvmt serve: --queue must be >= 1\n");
    return 2;
  }
  config.verbose = !args.get_flag("quiet");

  ServeServer server(config);
  try {
    server.start();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cvmt serve: %s\n", e.what());
    return 2;
  }

  const std::string port_file = args.get_string("port-file", "");
  if (!port_file.empty()) {
    std::ofstream out(port_file);
    out << server.port() << '\n';
    if (!out) {
      std::fprintf(stderr, "cvmt serve: cannot write --port-file %s\n",
                   port_file.c_str());
      server.stop();
      return 2;
    }
  }

  g_serve_signal = 0;
  struct sigaction action = {};
  action.sa_handler = serve_signal_handler;
  sigemptyset(&action.sa_mask);
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);

  // Poll both stop sources: the signal flag (async-signal-safe handler
  // above) and request_stop() from a `shutdown` request.
  for (;;) {
    if (server.wait_stop_requested_for(std::chrono::milliseconds(100)))
      break;
    if (g_serve_signal != 0) break;
  }
  if (config.verbose && g_serve_signal != 0)
    std::fprintf(stderr, "cvmt serve: signal received, draining\n");
  server.stop();
  return 0;
}

}  // namespace cvmt
