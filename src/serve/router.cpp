#include "serve/router.hpp"

#include "exp/driver.hpp"
#include "support/check.hpp"
#include "testgen/fuzz_driver.hpp"

namespace cvmt {
namespace {

JsonValue run_experiment(const Request& req) {
  const Experiment* experiment =
      ExperimentRegistry::instance().find(req.experiment);
  if (experiment == nullptr)
    throw RequestError(ServeError::kUnknownExperiment,
                       "unknown experiment \"" + req.experiment +
                           "\" (see `cvmt list`)",
                       req.id);
  const ExperimentResult result = experiment->run(RunContext{req.params});
  return result_to_json(*experiment, req.params, result);
}

JsonValue section_to_json(const ResultSection& s) {
  JsonValue section = JsonValue::object();
  if (!s.title.empty()) section.set("title", s.title);
  const JsonValue data = s.data.to_json();
  section.set("columns", data.get("columns"));
  section.set("rows", data.get("rows"));
  return section;
}

JsonValue run_single(const Request& req, SimSession& session) {
  const Scheme scheme = Scheme::parse(req.scheme);
  const SimResult r = session.run(
      scheme, std::span<const std::string>(req.benchmarks),
      req.run_config);

  ResultSection summary;
  summary.title = "result";
  summary.data = Dataset(
      {ColumnSpec::str("Scheme"), ColumnSpec::integer("Cycles"),
       ColumnSpec::integer("Instructions"), ColumnSpec::integer("Ops"),
       ColumnSpec::integer("Idle cycles"), ColumnSpec::real("IPC", 4),
       ColumnSpec::real("I$ hit", 4), ColumnSpec::real("D$ hit", 4)});
  summary.data.add_row({r.scheme, static_cast<std::int64_t>(r.cycles),
                        static_cast<std::int64_t>(r.total_instructions),
                        static_cast<std::int64_t>(r.total_ops),
                        static_cast<std::int64_t>(r.idle_cycles), r.ipc,
                        r.icache.rate(), r.dcache.rate()});

  ResultSection threads;
  threads.title = "threads";
  threads.data = Dataset({ColumnSpec::integer("Thread"),
                          ColumnSpec::str("Benchmark"),
                          ColumnSpec::integer("Instructions"),
                          ColumnSpec::integer("Ops")});
  for (std::size_t i = 0; i < r.threads.size(); ++i)
    threads.data.add_row(
        {static_cast<std::int64_t>(i), r.threads[i].benchmark,
         static_cast<std::int64_t>(r.threads[i].instructions),
         static_cast<std::int64_t>(r.threads[i].ops)});

  JsonValue out = JsonValue::object();
  out.set("scheme", r.scheme);
  JsonValue sections = JsonValue::array();
  sections.push_back(section_to_json(summary));
  sections.push_back(section_to_json(threads));
  out.set("sections", std::move(sections));
  return out;
}

JsonValue run_fuzz(const Request& req) {
  FuzzOptions options;
  options.cases = req.fuzz_cases;
  options.seed = req.fuzz_seed;
  // One worker: the request already occupies one pool slot; its inner
  // sweep must not fan out underneath the daemon's own parallelism.
  options.workers = 1;
  const FuzzSweepResult sweep = run_fuzz_sweep(options);

  JsonValue out = JsonValue::object();
  out.set("cases", req.fuzz_cases);
  out.set("seed", req.fuzz_seed);
  out.set("failures", static_cast<std::uint64_t>(sweep.failures));
  ResultSection summary;
  summary.title = "summary";
  summary.data = sweep.summary();
  JsonValue sections = JsonValue::array();
  sections.push_back(section_to_json(summary));
  if (sweep.failures > 0) {
    ResultSection failures;
    failures.title = "failures";
    failures.data = sweep.failure_table();
    sections.push_back(section_to_json(failures));
  }
  out.set("sections", std::move(sections));
  return out;
}

}  // namespace

JsonValue execute_request(const Request& req, SimSession& session) {
  switch (req.type) {
    case RequestType::kExperiment: return run_experiment(req);
    case RequestType::kRun: return run_single(req, session);
    case RequestType::kFuzz: return run_fuzz(req);
    case RequestType::kStats:
    case RequestType::kPing:
    case RequestType::kShutdown: break;
  }
  CVMT_CHECK_MSG(false, "inline request type reached the worker pool");
  __builtin_unreachable();
}

}  // namespace cvmt
