// Request execution for the serve layer: one parsed work request in, one
// result JSON out. This is where serve meets the existing subsystems —
// experiments run through the ExperimentRegistry exactly as the CLI
// driver runs them (same params type, same result_to_json envelope, so an
// experiment response is byte-for-byte what `cvmt run <id> --format=json`
// prints), single simulations run through the worker's warm SimSession,
// and fuzz requests run a bounded differential sweep.
#pragma once

#include "serve/protocol.hpp"
#include "sim/session.hpp"

namespace cvmt {

/// Executes a work request (kExperiment / kRun / kFuzz) on the calling
/// worker's session. Returns the "result" payload of the ok response.
/// Throws RequestError for request-level failures (unknown experiment);
/// anything else that escapes is the server's "internal" error.
[[nodiscard]] JsonValue execute_request(const Request& req,
                                        SimSession& session);

}  // namespace cvmt
