// `cvmt client` — the scripted counterpart of `cvmt serve`: one-shot
// requests (ping / stats / shutdown / experiment / run / fuzz), raw
// request lines for protocol-level scripting, and a multi-connection
// pipelined load generator with client-side latency percentiles and
// request-id accounting (the CI smoke test's "zero lost jobs" assertion
// is this accounting).
#pragma once

namespace cvmt {

/// `cvmt client --port=N <action>`; see --help for the actions. Exit 0 on
/// a successful request (and, in load mode, clean accounting), 1 on an
/// error response or accounting failure, 2 on usage errors.
[[nodiscard]] int client_main(int argc, const char* const* argv);

}  // namespace cvmt
