#include "support/version.hpp"

namespace cvmt {

#ifndef CVMT_GIT_DESCRIBE
#define CVMT_GIT_DESCRIBE "unknown"
#endif
#ifndef CVMT_BUILD_TYPE
#define CVMT_BUILD_TYPE "unspecified"
#endif

const char* git_describe() { return CVMT_GIT_DESCRIBE; }

std::string compiler_id() {
#if defined(__clang__)
  return "clang " + std::to_string(__clang_major__) + "." +
         std::to_string(__clang_minor__) + "." +
         std::to_string(__clang_patchlevel__);
#elif defined(__GNUC__)
  return "gcc " + std::to_string(__GNUC__) + "." +
         std::to_string(__GNUC_MINOR__) + "." +
         std::to_string(__GNUC_PATCHLEVEL__);
#else
  return "unknown compiler";
#endif
}

const char* build_type() { return CVMT_BUILD_TYPE; }

std::string version_string() {
  return std::string("cvmt ") + git_describe() + " (" + compiler_id() +
         ", " + build_type() + ")";
}

}  // namespace cvmt
