// Minimal JSON value: enough for machine-readable experiment output and
// for reading it back in tests. Object keys keep insertion order so output
// is deterministic (the golden-stability tests compare bytes).
//
// Writing uses shortest-round-trip formatting for doubles (std::to_chars),
// so a parse(write(v)) round trip reproduces every numeric value exactly.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cvmt {

class JsonValue {
 public:
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kInt,
    kDouble,
    kString,
    kArray,
    kObject,
  };

  JsonValue() = default;  // null
  JsonValue(std::nullptr_t) {}
  JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}
  JsonValue(std::int64_t i) : kind_(Kind::kInt), int_(i) {}
  JsonValue(int i) : JsonValue(static_cast<std::int64_t>(i)) {}
  JsonValue(std::uint64_t u)
      : kind_(Kind::kInt), int_(static_cast<std::int64_t>(u)) {}
  JsonValue(double d) : kind_(Kind::kDouble), double_(d) {}
  JsonValue(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}
  JsonValue(std::string_view s) : JsonValue(std::string(s)) {}
  JsonValue(const char* s) : JsonValue(std::string(s)) {}

  [[nodiscard]] static JsonValue array();
  [[nodiscard]] static JsonValue object();

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }

  /// Typed accessors; CVMT_CHECK on kind mismatch (as_double also accepts
  /// kInt, mirroring JSON's single number type).
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] const std::string& as_string() const;

  // Array access.
  void push_back(JsonValue v);
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] const JsonValue& at(std::size_t i) const;

  // Object access. set() appends or overwrites; get() throws CheckError on
  // a missing key, find() returns nullptr instead.
  void set(std::string key, JsonValue v);
  [[nodiscard]] const JsonValue& get(std::string_view key) const;
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
  [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>&
  members() const;

  /// Serializes. `indent` < 0 renders compact (single line); otherwise
  /// pretty-prints with `indent` spaces per nesting level.
  void write(std::ostream& os, int indent = 2) const;
  [[nodiscard]] std::string dump(int indent = 2) const;

  /// Parses a complete JSON document (trailing non-whitespace rejected).
  /// Throws CheckError with position information on malformed input.
  [[nodiscard]] static JsonValue parse(std::string_view text);

 private:
  void write_impl(std::ostream& os, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

}  // namespace cvmt
