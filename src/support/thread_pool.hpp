// Fixed-size worker pool with futures-based submission. Built for the
// batch experiment runner: callers submit independent jobs and block on
// the returned futures. The pool makes no ordering promises beyond FIFO
// dequeue; determinism is the caller's concern (jobs must not share
// mutable state).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace cvmt {

class ThreadPool {
 public:
  /// Spawns `workers` threads (clamped to at least 1).
  explicit ThreadPool(unsigned workers);

  /// Lets tasks currently running finish, discards tasks still queued
  /// (their futures report std::future_error / broken_promise), then
  /// joins all workers. Wait on the returned futures before destroying
  /// the pool if every task must run.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// Hardware concurrency, never less than 1.
  [[nodiscard]] static unsigned hardware_workers();

  /// Enqueues `fn` for execution; the returned future carries its result
  /// or the exception it threw.
  template <typename F>
  [[nodiscard]] std::future<std::invoke_result_t<F>> submit(F&& fn) {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    enqueue([task] { (*task)(); });
    return result;
  }

 private:
  void enqueue(std::function<void()> job);
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace cvmt
