#include "support/rng.hpp"

#include <bit>
#include <cmath>

namespace cvmt {

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& w : s_) w = sm.next();
}

std::uint64_t Xoshiro256::next() {
  const std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

std::uint64_t Xoshiro256::next_below(std::uint64_t bound) {
  CVMT_CHECK(bound != 0);
  // Lemire 2019: multiply-shift with rejection for exact uniformity.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Xoshiro256::next_double() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Xoshiro256::next_bool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

std::size_t Xoshiro256::next_weighted(std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) {
    CVMT_CHECK_MSG(w >= 0.0, "weights must be non-negative");
    total += w;
  }
  CVMT_CHECK_MSG(total > 0.0, "at least one weight must be positive");
  double r = next_double() * total;
  for (std::size_t i = 0; i + 1 < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;
}

std::uint64_t Xoshiro256::next_trip_count(double mean) {
  CVMT_CHECK(mean >= 1.0);
  if (mean == 1.0) return 1;
  // Shifted geometric: 1 + Geom(p) has mean 1 + (1-p)/p = 1/p' with
  // p = 1/(mean). Sampled by inversion.
  const double p = 1.0 / mean;
  const double u = next_double();
  const double g = std::floor(std::log1p(-u) / std::log1p(-p));
  return 1 + static_cast<std::uint64_t>(g);
}

}  // namespace cvmt
