// Bump-pointer arena allocator for per-run simulation state.
//
// A dense sweep allocates the same small objects (thread contexts,
// scheduler scratch, lane bookkeeping) tens of thousands of times; the
// arena replaces those per-instance heap allocations with pointer bumps
// into chunked slabs. reset() is O(1): it rewinds the cursor to the first
// chunk and reuses the already-reserved slabs in place, so a batch engine
// can recycle its whole per-run footprint between grids without touching
// the system allocator.
//
// The arena hands out raw storage and never runs destructors — reset()
// would otherwise be O(live objects). Callers placement-new non-trivially-
// destructible objects via create<T>() and must destroy them explicitly
// before reset()/destruction (SimBatch tracks its contexts for exactly
// this); trivially-destructible payloads need no teardown at all.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace cvmt {

class Arena {
 public:
  /// `first_chunk_bytes` sizes the initial slab; later slabs double (and
  /// always fit the requested allocation).
  explicit Arena(std::size_t first_chunk_bytes = kDefaultChunkBytes);

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// `size` bytes aligned to `align` (a power of two, at most
  /// alignof(std::max_align_t)... larger requests are honoured too since
  /// chunks come from operator new with explicit alignment). Never
  /// returns nullptr; size 0 yields a valid (dereference-free) pointer.
  [[nodiscard]] void* allocate(std::size_t size, std::size_t align);

  /// Placement-constructs a T in arena storage. The arena does NOT run
  /// ~T(): callers own the destruction of non-trivially-destructible
  /// objects (destroy before reset()).
  template <typename T, typename... Args>
  [[nodiscard]] T* create(Args&&... args) {
    return ::new (allocate(sizeof(T), alignof(T)))
        T(std::forward<Args>(args)...);
  }

  /// A contiguous uninitialized array of `count` T.
  template <typename T>
  [[nodiscard]] T* allocate_array(std::size_t count) {
    return static_cast<T*>(allocate(sizeof(T) * count, alignof(T)));
  }

  /// O(1) rewind: all outstanding allocations are invalidated, every
  /// reserved chunk is kept for reuse. Constant-time by construction —
  /// no chunk list walk, no destructor sweep.
  void reset();

  /// Drops every chunk except the first (which is kept, rewound), giving
  /// reserved memory back to the system. O(chunks), for explicit trims.
  void release();

  /// Bytes handed out since construction/reset (including alignment pad).
  [[nodiscard]] std::size_t bytes_used() const { return bytes_used_; }
  /// Bytes reserved from the system across all chunks.
  [[nodiscard]] std::size_t bytes_reserved() const {
    return bytes_reserved_;
  }
  [[nodiscard]] std::size_t num_chunks() const { return chunks_.size(); }

 private:
  static constexpr std::size_t kDefaultChunkBytes = 1 << 14;  // 16 KiB

  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t capacity = 0;
  };

  /// Ensures the current chunk fits (size, align); out-of-line slow path.
  void* refill_and_allocate(std::size_t size, std::size_t align);

  std::vector<Chunk> chunks_;
  std::size_t current_ = 0;   ///< index of the chunk being bumped
  std::size_t cursor_ = 0;    ///< bump offset inside chunks_[current_]
  std::size_t bytes_used_ = 0;
  std::size_t bytes_reserved_ = 0;
};

}  // namespace cvmt
