// Validated environment-variable parsing shared by the experiment config
// and the batch runner. Malformed values never silently become 0: they are
// rejected with a warning on stderr and the caller's default is used.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace cvmt {

/// Reads the unsigned decimal integer environment variable `name`.
/// Returns `fallback` when the variable is unset or empty. A value that is
/// not a complete non-negative decimal number (non-numeric, trailing
/// garbage, a sign, out of range) is rejected: a warning naming the
/// variable is printed to stderr and `fallback` is returned.
[[nodiscard]] std::uint64_t env_u64(const char* name, std::uint64_t fallback);

/// Reads the environment variable `name` as a lower-cased word. Returns
/// `fallback` when unset or empty. Used for enum-valued knobs such as
/// CVMT_STATS=full|fast (the caller validates the word and warns).
[[nodiscard]] std::string env_word(const char* name,
                                   std::string_view fallback);

}  // namespace cvmt
