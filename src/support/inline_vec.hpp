// Fixed-capacity inline vector.
//
// VLIW packets hold at most issue_width operations (16 in the default
// machine); storing them inline avoids a heap allocation per simulated
// instruction, which dominates profile time otherwise. Only the subset of
// the std::vector interface the simulator needs is provided.
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <initializer_list>

#include "support/check.hpp"

namespace cvmt {

/// Contiguous container with inline storage for at most `Capacity` elements.
/// Elements must be trivially destructible (operations and small PODs are).
template <typename T, std::size_t Capacity>
class InlineVec {
  static_assert(std::is_trivially_destructible_v<T>,
                "InlineVec only supports trivially destructible types");

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  constexpr InlineVec() = default;

  constexpr InlineVec(std::initializer_list<T> init) {
    CVMT_CHECK(init.size() <= Capacity);
    for (const T& v : init) push_back(v);
  }

  // Copying moves only the occupied prefix, not the whole inline array: a
  // VLIW packet rarely fills all kMaxTotalOps slots, and the defaulted
  // member-wise copy (the full std::array) dominated the trace-generation
  // profile.
  constexpr InlineVec(const InlineVec& other) : size_(other.size_) {
    std::copy(other.begin(), other.end(), data_.data());
  }
  constexpr InlineVec& operator=(const InlineVec& other) {
    size_ = other.size_;
    std::copy(other.begin(), other.end(), data_.data());
    return *this;
  }

  [[nodiscard]] constexpr std::size_t size() const { return size_; }
  [[nodiscard]] constexpr bool empty() const { return size_ == 0; }
  [[nodiscard]] static constexpr std::size_t capacity() { return Capacity; }

  constexpr void push_back(const T& v) {
    CVMT_DCHECK(size_ < Capacity);
    data_[size_++] = v;
  }

  /// Constructs an element in place and returns a reference to it.
  template <typename... Args>
  constexpr T& emplace_back(Args&&... args) {
    CVMT_DCHECK(size_ < Capacity);
    data_[size_] = T{std::forward<Args>(args)...};
    return data_[size_++];
  }

  constexpr void clear() { size_ = 0; }

  constexpr void pop_back() {
    CVMT_DCHECK(size_ > 0);
    --size_;
  }

  constexpr T& operator[](std::size_t i) {
    CVMT_DCHECK(i < size_);
    return data_[i];
  }
  constexpr const T& operator[](std::size_t i) const {
    CVMT_DCHECK(i < size_);
    return data_[i];
  }

  constexpr T& back() {
    CVMT_DCHECK(size_ > 0);
    return data_[size_ - 1];
  }
  constexpr const T& back() const {
    CVMT_DCHECK(size_ > 0);
    return data_[size_ - 1];
  }

  constexpr iterator begin() { return data_.data(); }
  constexpr iterator end() { return data_.data() + size_; }
  constexpr const_iterator begin() const { return data_.data(); }
  constexpr const_iterator end() const { return data_.data() + size_; }

  friend constexpr bool operator==(const InlineVec& a, const InlineVec& b) {
    return a.size_ == b.size_ && std::equal(a.begin(), a.end(), b.begin());
  }

 private:
  /// Intentionally default-initialized: only the [0, size_) prefix is ever
  /// read or copied, and zeroing the full array on construction shows up
  /// in the simulator's hot loop.
  std::array<T, Capacity> data_;
  std::size_t size_ = 0;
};

}  // namespace cvmt
