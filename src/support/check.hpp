// Lightweight invariant checking.
//
// CVMT_CHECK is always on (simulation correctness depends on it: a merge
// engine that silently issues a conflicting packet would corrupt every
// downstream figure). CVMT_DCHECK compiles out in NDEBUG builds and is meant
// for hot-loop assertions.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace cvmt {

/// Exception thrown when a CVMT_CHECK fails. Deriving from std::logic_error
/// signals a programming error rather than a recoverable runtime condition.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "CVMT_CHECK failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace cvmt

#define CVMT_CHECK(expr)                                              \
  do {                                                                \
    if (!(expr))                                                      \
      ::cvmt::detail::check_failed(#expr, __FILE__, __LINE__, {});    \
  } while (0)

#define CVMT_CHECK_MSG(expr, msg)                                     \
  do {                                                                \
    if (!(expr))                                                      \
      ::cvmt::detail::check_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)

#ifdef NDEBUG
// sizeof keeps the expression name-checked (no unused warnings) without
// evaluating it.
#define CVMT_DCHECK(expr) ((void)sizeof(!(expr)))
#else
#define CVMT_DCHECK(expr) CVMT_CHECK(expr)
#endif
