// Small string helpers shared by the scheme parser and report writers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace cvmt {

/// Splits `s` on `sep`, keeping empty fields.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char sep);

/// Removes leading/trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view s);

/// Uppercases ASCII letters.
[[nodiscard]] std::string to_upper(std::string_view s);

/// Formats `value` with `decimals` fractional digits (locale-independent).
[[nodiscard]] std::string format_fixed(double value, int decimals);

/// Formats an integer with thousands separators ("12,345").
[[nodiscard]] std::string format_grouped(long long value);

}  // namespace cvmt
