// Small string helpers shared by the scheme parser and report writers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace cvmt {

/// Splits `s` on `sep`, keeping empty fields.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char sep);

/// Removes leading/trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view s);

/// Uppercases ASCII letters.
[[nodiscard]] std::string to_upper(std::string_view s);

/// Strict unsigned parse of a whole token. strtoull alone is too
/// permissive for config surfaces: it skips a leading sign (negating
/// modulo 2^64, so "-1" becomes 18446744073709551615) and stops at the
/// first non-digit ("123abc" parses as 123, "abc" as 0). This requires
/// every character to be consumed, forbids signs and leading whitespace,
/// and rejects out-of-range values. `base` is 10, or 0 to also accept
/// 0x-prefixed hex (slot masks, addresses). Returns false without
/// touching `out` on any rejection.
[[nodiscard]] bool parse_u64_token(std::string_view tok, std::uint64_t& out,
                                   int base = 10);

/// The double counterpart: full-token, unsigned, finite. Returns false
/// without touching `out` otherwise.
[[nodiscard]] bool parse_double_token(std::string_view tok, double& out);

/// Formats `value` with `decimals` fractional digits (locale-independent).
[[nodiscard]] std::string format_fixed(double value, int decimals);

/// Formats an integer with thousands separators ("12,345").
[[nodiscard]] std::string format_grouped(long long value);

}  // namespace cvmt
