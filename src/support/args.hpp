// Command-line flag parser shared by the cvmt driver, the bench shims and
// the examples. Each option may name a CVMT_* environment variable; values
// then resolve in layers:
//
//   CLI flag  >  environment variable  >  built-in default
//
// A malformed CLI value is a hard error (parse() fails with a message on
// stderr); a malformed environment value only warns and falls back, per
// the env.hpp contract — the user typed the flag just now, but the
// variable may be ambient from an unrelated shell.
//
// Syntax: --name=value or --name value; bool flags take no value
// (--name); "--" ends flag parsing; everything else is positional.
// Passing the same option twice on one command line is an error (last-
// one-wins would silently hide stale shell-history edits).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace cvmt {

class ArgParser {
 public:
  enum class Outcome : std::uint8_t {
    kOk,
    kHelp,   ///< --help was given; help text already printed
    kError,  ///< malformed input; message already printed to stderr
  };

  /// `program` and `description` head the --help text.
  ArgParser(std::string program, std::string description);

  // Option declarations. `env` (optional) names the environment variable
  // the option layers over; it appears in the --help text.
  void add_flag(std::string name, std::string help, std::string env = {});
  void add_u64(std::string name, std::string value_name, std::string help,
               std::string env = {});
  void add_double(std::string name, std::string value_name,
                  std::string help);
  /// `choices` non-empty restricts CLI values (error otherwise).
  void add_string(std::string name, std::string value_name,
                  std::string help, std::string env = {},
                  std::vector<std::string> choices = {});
  /// Positional parameter, shown in the usage line as [name].
  void add_positional(std::string name, std::string help);

  /// Parses argv. On kError a diagnostic (and a pointer to --help) has
  /// been printed to stderr; on kHelp the help text went to stdout.
  [[nodiscard]] Outcome parse(int argc, const char* const* argv);

  /// True when the option was explicitly set on the command line.
  [[nodiscard]] bool set_on_cli(std::string_view name) const;

  // Layered getters: CLI > env > fallback. get_flag treats a non-zero
  // numeric environment value as true.
  [[nodiscard]] bool get_flag(std::string_view name) const;
  [[nodiscard]] std::uint64_t get_u64(std::string_view name,
                                      std::uint64_t fallback) const;
  [[nodiscard]] double get_double(std::string_view name,
                                  double fallback) const;
  [[nodiscard]] std::string get_string(std::string_view name,
                                       std::string_view fallback) const;

  [[nodiscard]] std::size_t num_positionals() const {
    return positionals_.size();
  }
  [[nodiscard]] const std::string& positional(std::size_t i) const;
  [[nodiscard]] std::string positional_or(std::size_t i,
                                          std::string_view fallback) const;

  /// Names of options explicitly set on the CLI (used by the driver to
  /// warn about flags an experiment's schema does not consume).
  [[nodiscard]] std::vector<std::string> cli_set_names() const;

  void print_help(std::ostream& os) const;

 private:
  enum class OptKind : std::uint8_t { kFlag, kU64, kDouble, kString };

  struct Option {
    std::string name;
    std::string value_name;
    std::string help;
    std::string env;
    std::vector<std::string> choices;
    OptKind kind = OptKind::kFlag;
    bool set = false;
    bool flag_value = false;
    std::uint64_t u64_value = 0;
    double double_value = 0.0;
    std::string string_value;
  };

  struct PositionalSpec {
    std::string name;
    std::string help;
  };

  [[nodiscard]] Option* find(std::string_view name);
  [[nodiscard]] const Option* find(std::string_view name) const;
  [[nodiscard]] const Option& require(std::string_view name,
                                      OptKind kind) const;
  bool apply_value(Option& opt, std::string_view value);

  std::string program_;
  std::string description_;
  std::vector<Option> options_;
  std::vector<PositionalSpec> positional_specs_;
  std::vector<std::string> positionals_;
};

}  // namespace cvmt
