// Build identification for logs and bug reports: `cvmt --version`, the
// serve daemon's startup banner, and the stats response all print this.
// The git describe string and build type are injected at CMake configure
// time (see the CVMT_GIT_DESCRIBE / CVMT_BUILD_TYPE definitions on
// version.cpp in CMakeLists.txt); the compiler identifies itself via
// predefined macros, so the string is honest even under ccache.
#pragma once

#include <string>

namespace cvmt {

/// "git <describe>" — "unknown" when the source tree was not a git
/// checkout at configure time.
[[nodiscard]] const char* git_describe();

/// Compiler id and version, e.g. "gcc 13.2.0" or "clang 17.0.6".
[[nodiscard]] std::string compiler_id();

/// CMake build type, e.g. "Release"; "unspecified" in multi-config builds.
[[nodiscard]] const char* build_type();

/// One line for banners: "cvmt <git> (<compiler>, <build type>)".
[[nodiscard]] std::string version_string();

}  // namespace cvmt
