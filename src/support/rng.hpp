// Deterministic pseudo-random number generation.
//
// Every stochastic component of the simulator (trace synthesis, OS thread
// replacement) draws from these generators so a (seed, config) pair fully
// determines simulation output. std::mt19937 is avoided because its state is
// large and its distributions are not reproducible across standard library
// implementations; all distribution code here is self-contained.
#pragma once

#include <cstdint>
#include <span>

#include "support/check.hpp"

namespace cvmt {

/// SplitMix64: tiny generator used for seeding and cheap decorrelated
/// streams. Passes BigCrush when used as a 64-bit generator.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: the workhorse generator. Small state, fast, high quality.
/// The full state is copyable, which the resumable trace generators rely on.
class Xoshiro256 {
 public:
  /// Seeds the four state words from SplitMix64 as recommended by the
  /// xoshiro authors (avoids the all-zero state).
  explicit Xoshiro256(std::uint64_t seed);

  std::uint64_t next();

  /// Uniform integer in [0, bound). Uses Lemire's multiply-shift reduction
  /// with rejection, so results are unbiased. `bound` must be nonzero.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1) with 53 bits of precision.
  double next_double();

  /// Bernoulli draw with probability `p` (clamped to [0,1]).
  bool next_bool(double p);

  /// Samples an index according to non-negative `weights` (not necessarily
  /// normalised). At least one weight must be positive.
  std::size_t next_weighted(std::span<const double> weights);

  /// Geometric-ish positive integer with mean approximately `mean` (>= 1).
  /// Used for loop trip counts.
  std::uint64_t next_trip_count(double mean);

  friend bool operator==(const Xoshiro256& a, const Xoshiro256& b) {
    return a.s_[0] == b.s_[0] && a.s_[1] == b.s_[1] && a.s_[2] == b.s_[2] &&
           a.s_[3] == b.s_[3];
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace cvmt
