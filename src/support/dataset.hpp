// Dataset: the generic result type every experiment runner returns at the
// render boundary. A Dataset is a small column-typed table — named columns
// with a declared type and formatting hints, row-major cells in stable
// insertion order — that renders to an aligned ASCII table (byte-identical
// to the historical per-figure TableWriter output), to CSV (full numeric
// precision) or to JSON (typed values, see to_json/from_json).
//
// The typed per-figure row structs (Table1Row, Fig10Result, ...) remain as
// thin views for the tests and for computation; a Dataset is what crosses
// the experiment API boundary to the cvmt driver and the bench shims.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "support/json.hpp"
#include "support/table.hpp"

namespace cvmt {

enum class ColumnType : std::uint8_t {
  kString,
  kReal,  ///< double; table/CSV text uses `decimals` fixed digits
  kInt,   ///< int64; table text honours `grouped`
};

[[nodiscard]] std::string_view to_string(ColumnType t);
[[nodiscard]] ColumnType column_type_from_string(std::string_view s);

/// Declaration of one Dataset column: the value type plus the formatting
/// hints that reproduce the paper-style table rendering.
struct ColumnSpec {
  std::string name;
  ColumnType type = ColumnType::kString;
  int decimals = 2;        ///< kReal: fixed fractional digits in tables
  bool grouped = false;    ///< kInt: thousands separators in tables
  std::string suffix;      ///< appended to table/CSV text ("%", "x")
  std::string null_text;   ///< table text for a null cell (default "")

  [[nodiscard]] static ColumnSpec str(std::string name);
  [[nodiscard]] static ColumnSpec real(std::string name, int decimals = 2,
                                       std::string suffix = {});
  [[nodiscard]] static ColumnSpec integer(std::string name,
                                          bool grouped = false);
};

/// One cell: null (monostate), string, real or integer. Non-null cells
/// must match their column's declared type (checked on insertion).
using Cell = std::variant<std::monostate, std::string, double, std::int64_t>;

class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::vector<ColumnSpec> columns);

  [[nodiscard]] const std::vector<ColumnSpec>& columns() const {
    return columns_;
  }
  [[nodiscard]] std::size_t num_cols() const { return columns_.size(); }
  /// Data rows only; separators are not counted.
  [[nodiscard]] std::size_t num_rows() const;
  /// Index of the named column; throws CheckError when absent.
  [[nodiscard]] std::size_t col_index(std::string_view name) const;

  /// Appends a row. Arity must match the column count and every non-null
  /// cell must match its column type (CVMT_CHECK otherwise).
  void add_row(std::vector<Cell> cells);
  /// Appends a horizontal separator (rendered as a rule in tables,
  /// skipped in CSV/JSON).
  void add_separator();

  /// The cell of data row `row` (separator rows are transparent).
  [[nodiscard]] const Cell& cell(std::size_t row, std::size_t col) const;
  [[nodiscard]] double real_at(std::size_t row, std::size_t col) const;
  [[nodiscard]] std::int64_t int_at(std::size_t row, std::size_t col) const;
  [[nodiscard]] const std::string& str_at(std::size_t row,
                                          std::size_t col) const;

  /// Table text of one cell (formatting hints + suffix applied).
  [[nodiscard]] std::string format_cell(std::size_t row,
                                        std::size_t col) const;

  /// Renders to the aligned-ASCII TableWriter (the legacy bench look,
  /// byte-identical to the historical per-figure renderers).
  [[nodiscard]] TableWriter to_table() const;

  /// Machine-readable CSV: header row then data rows. Reals are written
  /// with shortest-round-trip precision (not the table's fixed decimals),
  /// strings are quoted only when they contain ',', '"' or newlines.
  void write_csv(std::ostream& os) const;
  /// Parses write_csv output back into a Dataset with `columns`.
  [[nodiscard]] static Dataset from_csv(std::vector<ColumnSpec> columns,
                                        std::string_view text);

  /// JSON object {"columns":[{"name","type"},...],"rows":[[...],...]}.
  /// Null cells become JSON null; separators are dropped.
  [[nodiscard]] JsonValue to_json() const;
  /// Rebuilds from to_json output (formatting hints reset to defaults).
  [[nodiscard]] static Dataset from_json(const JsonValue& v);

 private:
  std::vector<ColumnSpec> columns_;
  std::vector<std::vector<Cell>> rows_;  ///< empty vector = separator
};

}  // namespace cvmt
