#include "support/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "support/check.hpp"

namespace cvmt {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw CheckError(what + ": " + std::strerror(errno));
}

}  // namespace

// --- TcpStream ------------------------------------------------------------

TcpStream::TcpStream(TcpStream&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

TcpStream& TcpStream::operator=(TcpStream&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

TcpStream::~TcpStream() { close(); }

bool TcpStream::send_all(std::string_view data) {
  while (!data.empty()) {
    // MSG_NOSIGNAL: a peer that hung up must yield EPIPE here, not kill
    // the process with SIGPIPE.
    const ssize_t n =
        ::send(fd_, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

long TcpStream::recv_some(char* buf, std::size_t cap) {
  for (;;) {
    const ssize_t n = ::recv(fd_, buf, cap, 0);
    if (n < 0 && errno == EINTR) continue;
    return static_cast<long>(n);
  }
}

void TcpStream::shutdown_read() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RD);
}

void TcpStream::shutdown_both() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void TcpStream::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

// --- TcpListener ----------------------------------------------------------

TcpListener::TcpListener(TcpListener&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      port_(std::exchange(other.port_, 0)) {}

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    port_ = std::exchange(other.port_, 0);
  }
  return *this;
}

TcpListener::~TcpListener() { close(); }

TcpListener TcpListener::bind_local(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket()");

  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(fd);
    throw_errno("bind(127.0.0.1:" + std::to_string(port) + ")");
  }
  if (::listen(fd, 128) < 0) {
    ::close(fd);
    throw_errno("listen()");
  }

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    ::close(fd);
    throw_errno("getsockname()");
  }

  TcpListener l;
  l.fd_ = fd;
  l.port_ = ntohs(bound.sin_port);
  return l;
}

TcpStream TcpListener::accept_one() {
  // Snapshot the descriptor: close() from another thread is the accept
  // loop's exit signal, and accept(2) on the closed descriptor returns
  // EBADF, which maps to the invalid stream below.
  const int fd = fd_;
  if (fd < 0) return TcpStream{};
  for (;;) {
    const int conn = ::accept(fd, nullptr, nullptr);
    if (conn >= 0) {
      // Request/response lines are small; Nagle would add 40ms stalls to
      // pipelined clients.
      const int one = 1;
      ::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return TcpStream{conn};
    }
    if (errno == EINTR) continue;
    return TcpStream{};
  }
}

void TcpListener::close() {
  if (fd_ >= 0) {
    // shutdown() first: close() alone does not reliably wake a thread
    // blocked in accept(2) on all platforms.
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
}

// --- connect --------------------------------------------------------------

TcpStream connect_local(std::uint16_t port, const std::string& host) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket()");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw CheckError("connect: not an IPv4 address: " + host);
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    ::close(fd);
    throw_errno("connect(" + host + ":" + std::to_string(port) + ")");
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return TcpStream{fd};
}

}  // namespace cvmt
