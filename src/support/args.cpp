#include "support/args.hpp"

#include <charconv>
#include <cstdio>
#include <iostream>
#include <ostream>

#include "support/check.hpp"
#include "support/env.hpp"

namespace cvmt {

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

namespace {

void check_new_name(std::string_view name) {
  CVMT_CHECK_MSG(!name.empty() && name.substr(0, 2) != "--",
                 "option names are declared without the leading --");
}

}  // namespace

void ArgParser::add_flag(std::string name, std::string help,
                         std::string env) {
  check_new_name(name);
  Option opt;
  opt.name = std::move(name);
  opt.help = std::move(help);
  opt.env = std::move(env);
  opt.kind = OptKind::kFlag;
  options_.push_back(std::move(opt));
}

void ArgParser::add_u64(std::string name, std::string value_name,
                        std::string help, std::string env) {
  check_new_name(name);
  Option opt;
  opt.name = std::move(name);
  opt.value_name = std::move(value_name);
  opt.help = std::move(help);
  opt.env = std::move(env);
  opt.kind = OptKind::kU64;
  options_.push_back(std::move(opt));
}

void ArgParser::add_double(std::string name, std::string value_name,
                           std::string help) {
  check_new_name(name);
  Option opt;
  opt.name = std::move(name);
  opt.value_name = std::move(value_name);
  opt.help = std::move(help);
  opt.kind = OptKind::kDouble;
  options_.push_back(std::move(opt));
}

void ArgParser::add_string(std::string name, std::string value_name,
                           std::string help, std::string env,
                           std::vector<std::string> choices) {
  check_new_name(name);
  Option opt;
  opt.name = std::move(name);
  opt.value_name = std::move(value_name);
  opt.help = std::move(help);
  opt.env = std::move(env);
  opt.choices = std::move(choices);
  opt.kind = OptKind::kString;
  options_.push_back(std::move(opt));
}

void ArgParser::add_positional(std::string name, std::string help) {
  positional_specs_.push_back({std::move(name), std::move(help)});
}

ArgParser::Option* ArgParser::find(std::string_view name) {
  for (Option& opt : options_)
    if (opt.name == name) return &opt;
  return nullptr;
}

const ArgParser::Option* ArgParser::find(std::string_view name) const {
  for (const Option& opt : options_)
    if (opt.name == name) return &opt;
  return nullptr;
}

const ArgParser::Option& ArgParser::require(std::string_view name,
                                            OptKind kind) const {
  const Option* opt = find(name);
  CVMT_CHECK_MSG(opt != nullptr,
                 "undeclared option queried: " + std::string(name));
  CVMT_CHECK_MSG(opt->kind == kind,
                 "option kind mismatch for: " + std::string(name));
  return *opt;
}

bool ArgParser::apply_value(Option& opt, std::string_view value) {
  switch (opt.kind) {
    case OptKind::kFlag:
      CVMT_CHECK_MSG(false, "flags take no value");
      return false;
    case OptKind::kU64: {
      std::uint64_t v = 0;
      const auto [p, ec] =
          std::from_chars(value.data(), value.data() + value.size(), v);
      if (ec != std::errc() || p != value.data() + value.size() ||
          value.empty()) {
        std::fprintf(stderr,
                     "%s: --%s expects a non-negative integer, got \"%.*s\"\n",
                     program_.c_str(), opt.name.c_str(),
                     static_cast<int>(value.size()), value.data());
        return false;
      }
      opt.u64_value = v;
      return true;
    }
    case OptKind::kDouble: {
      double v = 0.0;
      const auto [p, ec] =
          std::from_chars(value.data(), value.data() + value.size(), v);
      if (ec != std::errc() || p != value.data() + value.size() ||
          value.empty()) {
        std::fprintf(stderr, "%s: --%s expects a number, got \"%.*s\"\n",
                     program_.c_str(), opt.name.c_str(),
                     static_cast<int>(value.size()), value.data());
        return false;
      }
      opt.double_value = v;
      return true;
    }
    case OptKind::kString: {
      if (!opt.choices.empty()) {
        bool ok = false;
        for (const std::string& c : opt.choices) ok = ok || c == value;
        if (!ok) {
          std::string all;
          for (const std::string& c : opt.choices)
            all += (all.empty() ? "" : "|") + c;
          std::fprintf(stderr, "%s: --%s expects one of %s, got \"%.*s\"\n",
                       program_.c_str(), opt.name.c_str(), all.c_str(),
                       static_cast<int>(value.size()), value.data());
          return false;
        }
      }
      opt.string_value = std::string(value);
      return true;
    }
  }
  return false;
}

ArgParser::Outcome ArgParser::parse(int argc, const char* const* argv) {
  bool flags_done = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (flags_done || arg.size() < 2 || arg.substr(0, 2) != "--") {
      positionals_.emplace_back(arg);
      continue;
    }
    if (arg == "--") {
      flags_done = true;
      continue;
    }
    if (arg == "--help") {
      print_help(std::cout);
      return Outcome::kHelp;
    }
    std::string_view name = arg.substr(2);
    std::string_view value;
    bool has_value = false;
    if (const auto eq = name.find('='); eq != std::string_view::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    Option* opt = find(name);
    if (opt == nullptr) {
      std::fprintf(stderr, "%s: unknown option --%.*s (try --help)\n",
                   program_.c_str(), static_cast<int>(name.size()),
                   name.data());
      return Outcome::kError;
    }
    if (opt->set) {
      // Passing a flag twice is almost always a stale shell-history edit;
      // silently letting the last one win hides the mistake.
      std::fprintf(stderr, "%s: duplicate option --%s\n", program_.c_str(),
                   opt->name.c_str());
      return Outcome::kError;
    }
    if (opt->kind == OptKind::kFlag) {
      if (has_value) {
        std::fprintf(stderr, "%s: --%s takes no value\n", program_.c_str(),
                     opt->name.c_str());
        return Outcome::kError;
      }
      opt->flag_value = true;
      opt->set = true;
      continue;
    }
    if (!has_value) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: --%s requires a value (try --help)\n",
                     program_.c_str(), opt->name.c_str());
        return Outcome::kError;
      }
      value = argv[++i];
    }
    if (!apply_value(*opt, value)) return Outcome::kError;
    opt->set = true;
  }
  if (positionals_.size() > positional_specs_.size()) {
    std::fprintf(stderr,
                 "%s: too many positional arguments (%zu given, at most "
                 "%zu expected; try --help)\n",
                 program_.c_str(), positionals_.size(),
                 positional_specs_.size());
    return Outcome::kError;
  }
  return Outcome::kOk;
}

bool ArgParser::set_on_cli(std::string_view name) const {
  const Option* opt = find(name);
  CVMT_CHECK_MSG(opt != nullptr,
                 "undeclared option queried: " + std::string(name));
  return opt->set;
}

bool ArgParser::get_flag(std::string_view name) const {
  const Option& opt = require(name, OptKind::kFlag);
  if (opt.set) return opt.flag_value;
  if (!opt.env.empty()) return env_u64(opt.env.c_str(), 0) != 0;
  return false;
}

std::uint64_t ArgParser::get_u64(std::string_view name,
                                 std::uint64_t fallback) const {
  const Option& opt = require(name, OptKind::kU64);
  if (opt.set) return opt.u64_value;
  if (!opt.env.empty()) return env_u64(opt.env.c_str(), fallback);
  return fallback;
}

double ArgParser::get_double(std::string_view name, double fallback) const {
  const Option& opt = require(name, OptKind::kDouble);
  return opt.set ? opt.double_value : fallback;
}

std::string ArgParser::get_string(std::string_view name,
                                  std::string_view fallback) const {
  const Option& opt = require(name, OptKind::kString);
  if (opt.set) return opt.string_value;
  if (!opt.env.empty()) return env_word(opt.env.c_str(), fallback);
  return std::string(fallback);
}

const std::string& ArgParser::positional(std::size_t i) const {
  CVMT_CHECK_MSG(i < positionals_.size(),
                 "positional argument index out of range");
  return positionals_[i];
}

std::string ArgParser::positional_or(std::size_t i,
                                     std::string_view fallback) const {
  return i < positionals_.size() ? positionals_[i] : std::string(fallback);
}

std::vector<std::string> ArgParser::cli_set_names() const {
  std::vector<std::string> names;
  for (const Option& opt : options_)
    if (opt.set) names.push_back(opt.name);
  return names;
}

void ArgParser::print_help(std::ostream& os) const {
  os << "usage: " << program_ << " [options]";
  for (const PositionalSpec& p : positional_specs_)
    os << " [" << p.name << "]";
  os << "\n\n" << description_ << "\n";
  if (!positional_specs_.empty()) {
    os << "\npositional arguments:\n";
    for (const PositionalSpec& p : positional_specs_)
      os << "  " << p.name << "\n      " << p.help << "\n";
  }
  os << "\noptions:\n";
  for (const Option& opt : options_) {
    os << "  --" << opt.name;
    if (opt.kind != OptKind::kFlag) os << "=<" << opt.value_name << ">";
    os << "\n      " << opt.help;
    if (!opt.choices.empty()) {
      os << " (one of:";
      for (const std::string& c : opt.choices) os << ' ' << c;
      os << ')';
    }
    if (!opt.env.empty()) os << " [env: " << opt.env << "]";
    os << "\n";
  }
  os << "  --help\n      Show this help text.\n";
}

}  // namespace cvmt
