#include "support/env.hpp"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace cvmt {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;

  // strtoull alone is too permissive: it skips signs (negating modulo
  // 2^64) and stops at the first non-digit, so "abc" would parse as 0 and
  // "123abc" as 123. Require every character to be consumed and forbid
  // signs outright.
  const char* p = v;
  while (std::isspace(static_cast<unsigned char>(*p))) ++p;
  const bool signed_input = (*p == '-' || *p == '+');

  char* end = nullptr;
  errno = 0;
  const unsigned long long parsed = std::strtoull(v, &end, 10);
  if (signed_input || end == v || *end != '\0' || errno == ERANGE) {
    std::fprintf(stderr,
                 "cvmt: ignoring %s=\"%s\" (expected an unsigned decimal "
                 "integer); using default %llu\n",
                 name, v, static_cast<unsigned long long>(fallback));
    return fallback;
  }
  return static_cast<std::uint64_t>(parsed);
}

std::string env_word(const char* name, std::string_view fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return std::string(fallback);
  std::string word(v);
  for (char& c : word)
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return word;
}

}  // namespace cvmt
