// Streaming statistics helpers used by simulator counters and experiment
// post-processing.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace cvmt {

/// Welford online mean/variance accumulator with min/max tracking.
class RunningStat {
 public:
  void add(double x);

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance (0 for fewer than two samples).
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

  /// Merges another accumulator into this one (parallel reduction).
  void merge(const RunningStat& other);

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-bucket histogram over small non-negative integers (e.g. "number of
/// threads issued per cycle", 0..N). Values beyond the last bucket clamp.
class Histogram {
 public:
  explicit Histogram(std::size_t buckets) : counts_(buckets, 0) {}

  void add(std::size_t value, std::uint64_t weight = 1);

  /// Rebuilds a histogram from its serialized state (the result store's
  /// round trip). Buckets alone cannot reproduce one: add() clamps the
  /// bucket index but accumulates the unclamped value into the weighted
  /// sum, so the sum is carried explicitly. restored(counts, total, sum)
  /// of a dumped histogram equals the original bit-for-bit.
  [[nodiscard]] static Histogram restored(std::vector<std::uint64_t> counts,
                                          std::uint64_t total,
                                          std::uint64_t weighted_sum);

  /// Zeroes every bucket and the totals; the bucket count is kept. A reset
  /// histogram is indistinguishable from a freshly constructed one (the
  /// session layer reuses result buffers across runs on this guarantee).
  void reset();

  [[nodiscard]] std::uint64_t bucket(std::size_t i) const;
  [[nodiscard]] std::size_t num_buckets() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t total() const { return total_; }
  /// Weight-scaled sum of the recorded values (the mean's numerator),
  /// exposed exactly so restored() can round-trip it; see restored().
  [[nodiscard]] std::uint64_t weighted_sum() const { return weighted_sum_; }
  /// Mean of the recorded integer values.
  [[nodiscard]] double mean() const;
  /// Fraction of samples in bucket `i` (0 if empty histogram).
  [[nodiscard]] double fraction(std::size_t i) const;

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t weighted_sum_ = 0;
};

/// Ratio counter for hit/miss style events.
struct RatioCounter {
  std::uint64_t hits = 0;
  std::uint64_t total = 0;

  void record(bool hit) {
    ++total;
    hits += hit ? 1u : 0u;
  }
  [[nodiscard]] double rate() const {
    return total ? static_cast<double>(hits) / static_cast<double>(total)
                 : 0.0;
  }
};

/// Percentage difference (a vs b), i.e. 100 * (a - b) / b.
[[nodiscard]] double percent_diff(double a, double b);

}  // namespace cvmt
