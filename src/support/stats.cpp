#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace cvmt {

void RunningStat::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  if (x < min_) min_ = x;
  if (x > max_) max_ = x;
}

double RunningStat::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

void RunningStat::merge(const RunningStat& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double nt = na + nb;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  mean_ = (na * mean_ + nb * other.mean_) / nt;
  n_ += other.n_;
  sum_ += other.sum_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

void Histogram::add(std::size_t value, std::uint64_t weight) {
  CVMT_CHECK(!counts_.empty());
  const std::size_t b = value < counts_.size() ? value : counts_.size() - 1;
  counts_[b] += weight;
  total_ += weight;
  weighted_sum_ += weight * value;
}

Histogram Histogram::restored(std::vector<std::uint64_t> counts,
                              std::uint64_t total,
                              std::uint64_t weighted_sum) {
  CVMT_CHECK(!counts.empty());
  Histogram h(counts.size());
  h.counts_ = std::move(counts);
  h.total_ = total;
  h.weighted_sum_ = weighted_sum;
  return h;
}

void Histogram::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  total_ = 0;
  weighted_sum_ = 0;
}

std::uint64_t Histogram::bucket(std::size_t i) const {
  CVMT_CHECK(i < counts_.size());
  return counts_[i];
}

double Histogram::mean() const {
  return total_ ? static_cast<double>(weighted_sum_) /
                      static_cast<double>(total_)
                : 0.0;
}

double Histogram::fraction(std::size_t i) const {
  CVMT_CHECK(i < counts_.size());
  return total_ ? static_cast<double>(counts_[i]) /
                      static_cast<double>(total_)
                : 0.0;
}

double percent_diff(double a, double b) {
  CVMT_CHECK(b != 0.0);
  return 100.0 * (a - b) / b;
}

}  // namespace cvmt
