#include "support/arena.hpp"

#include <algorithm>
#include <cstdint>

#include "support/check.hpp"

namespace cvmt {
namespace {

[[nodiscard]] constexpr bool is_pow2(std::size_t v) {
  return v != 0 && (v & (v - 1)) == 0;
}

[[nodiscard]] constexpr std::size_t align_up(std::size_t v,
                                             std::size_t align) {
  return (v + align - 1) & ~(align - 1);
}

/// Bytes a (size, align) request can need inside a chunk whose base is
/// only guaranteed max_align_t-aligned: payload plus worst-case pad.
[[nodiscard]] constexpr std::size_t worst_case(std::size_t size,
                                               std::size_t align) {
  return size + align;
}

}  // namespace

Arena::Arena(std::size_t first_chunk_bytes) {
  Chunk first;
  first.capacity = std::max<std::size_t>(first_chunk_bytes, 64);
  first.data = std::make_unique<std::byte[]>(first.capacity);
  bytes_reserved_ = first.capacity;
  chunks_.push_back(std::move(first));
}

void* Arena::allocate(std::size_t size, std::size_t align) {
  CVMT_CHECK_MSG(is_pow2(align), "arena alignment must be a power of two");
  // Fast path: bump within the current chunk. new[] storage is
  // max_align_t-aligned, so aligning the *offset* aligns the pointer for
  // any align up to that; larger alignments take the slow path, which
  // pads from the raw pointer value.
  if (align <= alignof(std::max_align_t)) {
    Chunk& chunk = chunks_[current_];
    const std::size_t start = align_up(cursor_, align);
    if (start + size <= chunk.capacity && start + size >= size) {
      bytes_used_ += (start - cursor_) + size;
      cursor_ = start + size;
      return chunk.data.get() + start;
    }
  }
  return refill_and_allocate(size, align);
}

void* Arena::refill_and_allocate(std::size_t size, std::size_t align) {
  // Move to the first later (already-reserved — reset() keeps them)
  // chunk that fits; reserve a fresh doubled chunk when none does.
  std::size_t idx = current_;
  std::size_t at = std::min(cursor_, chunks_[idx].capacity);
  while (worst_case(size, align) > chunks_[idx].capacity - at) {
    if (idx + 1 == chunks_.size()) {
      Chunk next;
      next.capacity =
          std::max(chunks_.back().capacity * 2, worst_case(size, align));
      next.data = std::make_unique<std::byte[]>(next.capacity);
      bytes_reserved_ += next.capacity;
      chunks_.push_back(std::move(next));
    }
    ++idx;
    at = 0;
  }
  current_ = idx;
  Chunk& chunk = chunks_[current_];
  const auto base = reinterpret_cast<std::uintptr_t>(chunk.data.get());
  const std::size_t start = static_cast<std::size_t>(
      align_up(base + at, align) - base);
  CVMT_CHECK(start + size <= chunk.capacity);
  bytes_used_ += (start - at) + size;
  cursor_ = start + size;
  return chunk.data.get() + start;
}

void Arena::reset() {
  current_ = 0;
  cursor_ = 0;
  bytes_used_ = 0;
}

void Arena::release() {
  chunks_.resize(1);
  bytes_reserved_ = chunks_[0].capacity;
  reset();
}

}  // namespace cvmt
