#include "support/thread_pool.hpp"

#include <utility>

#include "support/check.hpp"

namespace cvmt {

ThreadPool::ThreadPool(unsigned workers) {
  if (workers == 0) workers = 1;
  workers_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

unsigned ThreadPool::hardware_workers() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1u : n;
}

void ThreadPool::enqueue(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    CVMT_CHECK_MSG(!stopping_, "submit() on a stopping ThreadPool");
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Stopping discards still-queued tasks: their packaged_tasks are
      // destroyed with the queue, surfacing broken_promise to any holder
      // of their futures. This keeps an exception in one batch job from
      // forcing the whole remaining batch to run during unwinding.
      if (stopping_ || queue_.empty()) return;
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();  // packaged_task captures exceptions in its future
  }
}

}  // namespace cvmt
