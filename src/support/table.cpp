#include "support/table.hpp"

#include <algorithm>
#include <ostream>

#include "support/check.hpp"

namespace cvmt {

TableWriter::TableWriter(std::vector<std::string> header)
    : header_(std::move(header)) {
  CVMT_CHECK(!header_.empty());
}

void TableWriter::add_row(std::vector<std::string> cells) {
  CVMT_CHECK_MSG(cells.size() == header_.size(),
                 "row width must match header width");
  rows_.push_back(std::move(cells));
}

void TableWriter::add_separator() { rows_.emplace_back(); }

void TableWriter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c] << std::string(widths[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };
  const auto print_rule = [&] {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      os << (c == 0 ? "+-" : "-+-");
      os << std::string(widths[c], '-');
    }
    os << "-+\n";
  };

  print_rule();
  print_row(header_);
  print_rule();
  for (const auto& row : rows_) {
    if (row.empty())
      print_rule();
    else
      print_row(row);
  }
  print_rule();
}

void TableWriter::print_csv(std::ostream& os) const {
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  print_row(header_);
  for (const auto& row : rows_)
    if (!row.empty()) print_row(row);
}

void print_banner(std::ostream& os, const std::string& title) {
  os << '\n' << "== " << title << " ==\n\n";
}

}  // namespace cvmt
