// ASCII / CSV table rendering for bench binaries and examples.
//
// Every bench prints the same rows the paper's table or figure reports;
// TableWriter keeps that output aligned and optionally machine-readable.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace cvmt {

/// Column-aligned table builder. Usage:
///   TableWriter t({"Benchmark", "IPCr", "IPCp"});
///   t.add_row({"mcf", "0.96", "1.34"});
///   t.print(std::cout);
class TableWriter {
 public:
  explicit TableWriter(std::vector<std::string> header);

  /// Appends a row; must have exactly as many cells as the header.
  void add_row(std::vector<std::string> cells);

  /// Appends a horizontal separator line.
  void add_separator();

  /// Renders with padded columns and a header rule.
  void print(std::ostream& os) const;

  /// Renders as CSV (no padding, separator rows skipped).
  void print_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t num_cols() const { return header_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty vector = separator
};

/// Prints a figure/table banner ("== Figure 10: ... ==") used by benches.
void print_banner(std::ostream& os, const std::string& title);

}  // namespace cvmt
