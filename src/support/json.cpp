#include "support/json.hpp"

#include <array>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "support/check.hpp"

namespace cvmt {

JsonValue JsonValue::array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

bool JsonValue::as_bool() const {
  CVMT_CHECK_MSG(kind_ == Kind::kBool, "JSON value is not a bool");
  return bool_;
}

std::int64_t JsonValue::as_int() const {
  CVMT_CHECK_MSG(kind_ == Kind::kInt, "JSON value is not an integer");
  return int_;
}

double JsonValue::as_double() const {
  if (kind_ == Kind::kInt) return static_cast<double>(int_);
  CVMT_CHECK_MSG(kind_ == Kind::kDouble, "JSON value is not a number");
  return double_;
}

const std::string& JsonValue::as_string() const {
  CVMT_CHECK_MSG(kind_ == Kind::kString, "JSON value is not a string");
  return string_;
}

void JsonValue::push_back(JsonValue v) {
  CVMT_CHECK_MSG(kind_ == Kind::kArray, "JSON value is not an array");
  array_.push_back(std::move(v));
}

std::size_t JsonValue::size() const {
  if (kind_ == Kind::kArray) return array_.size();
  if (kind_ == Kind::kObject) return object_.size();
  CVMT_CHECK_MSG(false, "JSON value has no size");
  return 0;
}

const JsonValue& JsonValue::at(std::size_t i) const {
  CVMT_CHECK_MSG(kind_ == Kind::kArray, "JSON value is not an array");
  CVMT_CHECK_MSG(i < array_.size(), "JSON array index out of range");
  return array_[i];
}

void JsonValue::set(std::string key, JsonValue v) {
  CVMT_CHECK_MSG(kind_ == Kind::kObject, "JSON value is not an object");
  for (auto& [k, existing] : object_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  object_.emplace_back(std::move(key), std::move(v));
}

const JsonValue& JsonValue::get(std::string_view key) const {
  const JsonValue* v = find(key);
  CVMT_CHECK_MSG(v != nullptr, "missing JSON key: " + std::string(key));
  return *v;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  CVMT_CHECK_MSG(kind_ == Kind::kObject, "JSON value is not an object");
  for (const auto& [k, v] : object_)
    if (k == key) return &v;
  return nullptr;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  CVMT_CHECK_MSG(kind_ == Kind::kObject, "JSON value is not an object");
  return object_;
}

namespace {

void write_escaped(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char ch : s) {
    switch (ch) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          std::array<char, 8> buf{};
          std::snprintf(buf.data(), buf.size(), "\\u%04x",
                        static_cast<unsigned>(ch));
          os << buf.data();
        } else {
          os << ch;
        }
    }
  }
  os << '"';
}

void write_double(std::ostream& os, double d) {
  // JSON has no Inf/NaN; experiments never produce them, but a crash here
  // would mask the real bug, so degrade to null.
  if (!std::isfinite(d)) {
    os << "null";
    return;
  }
  std::array<char, 32> buf{};
  const auto [end, ec] =
      std::to_chars(buf.data(), buf.data() + buf.size(), d);
  CVMT_CHECK(ec == std::errc());
  os << std::string_view(buf.data(),
                         static_cast<std::size_t>(end - buf.data()));
}

void newline_indent(std::ostream& os, int indent, int depth) {
  if (indent < 0) return;
  os << '\n' << std::string(static_cast<std::size_t>(indent * depth), ' ');
}

}  // namespace

void JsonValue::write_impl(std::ostream& os, int indent, int depth) const {
  switch (kind_) {
    case Kind::kNull: os << "null"; return;
    case Kind::kBool: os << (bool_ ? "true" : "false"); return;
    case Kind::kInt: os << int_; return;
    case Kind::kDouble: write_double(os, double_); return;
    case Kind::kString: write_escaped(os, string_); return;
    case Kind::kArray: {
      if (array_.empty()) {
        os << "[]";
        return;
      }
      os << '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i) os << ',';
        newline_indent(os, indent, depth + 1);
        array_[i].write_impl(os, indent, depth + 1);
      }
      newline_indent(os, indent, depth);
      os << ']';
      return;
    }
    case Kind::kObject: {
      if (object_.empty()) {
        os << "{}";
        return;
      }
      os << '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i) os << ',';
        newline_indent(os, indent, depth + 1);
        write_escaped(os, object_[i].first);
        os << (indent < 0 ? ":" : ": ");
        object_[i].second.write_impl(os, indent, depth + 1);
      }
      newline_indent(os, indent, depth);
      os << '}';
      return;
    }
  }
}

void JsonValue::write(std::ostream& os, int indent) const {
  write_impl(os, indent, 0);
}

std::string JsonValue::dump(int indent) const {
  std::ostringstream os;
  write(os, indent);
  return os.str();
}

// ------------------------------------------------------------------ parser

namespace {

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    CVMT_CHECK_MSG(pos_ == text_.size(),
                   "trailing characters after JSON document at offset " +
                       std::to_string(pos_));
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    CVMT_CHECK_MSG(false, "JSON parse error at offset " +
                              std::to_string(pos_) + ": " + what);
    __builtin_unreachable();
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return JsonValue(parse_string());
    if (c == 't') {
      if (!consume_literal("true")) fail("bad literal");
      return JsonValue(true);
    }
    if (c == 'f') {
      if (!consume_literal("false")) fail("bad literal");
      return JsonValue(false);
    }
    if (c == 'n') {
      if (!consume_literal("null")) fail("bad literal");
      return JsonValue();
    }
    return parse_number();
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue obj = JsonValue::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return obj;
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue arr = JsonValue::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return arr;
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              fail("bad \\u escape");
          }
          // UTF-8 encode (no surrogate-pair support; the experiment
          // output is ASCII).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    bool is_double = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") fail("bad number");
    if (!is_double) {
      std::int64_t i = 0;
      const auto [p, ec] =
          std::from_chars(token.data(), token.data() + token.size(), i);
      if (ec == std::errc() && p == token.data() + token.size())
        return JsonValue(i);
      // Out-of-range integers fall through to double.
    }
    double d = 0.0;
    const auto [p, ec] =
        std::from_chars(token.data(), token.data() + token.size(), d);
    if (ec != std::errc() || p != token.data() + token.size())
      fail("bad number");
    return JsonValue(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue JsonValue::parse(std::string_view text) {
  return JsonParser(text).parse_document();
}

}  // namespace cvmt
