// Minimal POSIX TCP wrapper for the serve layer: a listener that binds a
// local port (0 = ephemeral, the bound port is readable afterwards), a
// stream with whole-buffer send/receive helpers, and a client-side
// connect. Everything is blocking; the serve layer's concurrency comes
// from threads, not readiness loops. Writes never raise SIGPIPE (a client
// hanging up mid-response must surface as an error return on the worker
// that holds the connection, not kill the daemon).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace cvmt {

/// One connected TCP stream. Move-only owner of the file descriptor.
class TcpStream {
 public:
  TcpStream() = default;
  explicit TcpStream(int fd) : fd_(fd) {}
  TcpStream(TcpStream&& other) noexcept;
  TcpStream& operator=(TcpStream&& other) noexcept;
  TcpStream(const TcpStream&) = delete;
  TcpStream& operator=(const TcpStream&) = delete;
  ~TcpStream();

  [[nodiscard]] bool valid() const { return fd_ >= 0; }

  /// Sends the whole buffer (looping over short writes, SIGPIPE
  /// suppressed). False on any error — the peer is gone; the caller drops
  /// the connection.
  [[nodiscard]] bool send_all(std::string_view data);

  /// Receives up to `cap` bytes into `buf`. Returns the byte count, 0 on
  /// orderly shutdown by the peer, -1 on error.
  [[nodiscard]] long recv_some(char* buf, std::size_t cap);

  /// Shuts down the read direction only: a blocked recv_some() wakes
  /// with 0, while queued writes still flush to the peer. The server's
  /// drain uses this to stop readers without dropping responses already
  /// (or still being) written. Safe to call from another thread.
  void shutdown_read();

  /// Shuts down both directions without closing the descriptor: any
  /// thread blocked in recv_some() on this stream wakes with 0/-1. Safe
  /// to call from another thread (the basis of the server's drain).
  void shutdown_both();

  void close();

 private:
  int fd_ = -1;
};

/// A listening TCP socket bound to 127.0.0.1 (serve is a local daemon; a
/// fronting proxy owns any wider exposure).
class TcpListener {
 public:
  TcpListener() = default;
  TcpListener(TcpListener&& other) noexcept;
  TcpListener& operator=(TcpListener&& other) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;
  ~TcpListener();

  /// Binds and listens on `port` (0 picks an ephemeral port). Throws
  /// CheckError with the errno text when the port cannot be bound.
  [[nodiscard]] static TcpListener bind_local(std::uint16_t port);

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  /// The actually-bound port (meaningful after bind_local(0)).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Blocks for the next connection. Returns an invalid stream when the
  /// listener was closed from another thread (the accept loop's exit
  /// signal) or on a transient accept failure.
  [[nodiscard]] TcpStream accept_one();

  /// Closes the listening descriptor; a blocked accept_one() returns an
  /// invalid stream. Safe to call from another thread.
  void close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// Connects to 127.0.0.1:`port` (or `host` when given). Throws CheckError
/// with the errno text on failure.
[[nodiscard]] TcpStream connect_local(std::uint16_t port,
                                      const std::string& host = "127.0.0.1");

}  // namespace cvmt
