#include "support/string_util.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace cvmt {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view s) {
  const auto is_space = [](char c) {
    return std::isspace(static_cast<unsigned char>(c)) != 0;
  };
  while (!s.empty() && is_space(s.front())) s.remove_prefix(1);
  while (!s.empty() && is_space(s.back())) s.remove_suffix(1);
  return s;
}

std::string to_upper(std::string_view s) {
  std::string out(s);
  for (char& c : out)
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool parse_u64_token(std::string_view tok, std::uint64_t& out, int base) {
  if (tok.empty()) return false;
  const char front = tok.front();
  if (front == '-' || front == '+' ||
      std::isspace(static_cast<unsigned char>(front)))
    return false;
  const std::string buf(tok);  // strtoull needs a terminator
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(buf.c_str(), &end, base);
  if (end != buf.c_str() + buf.size() || end == buf.c_str() ||
      errno == ERANGE)
    return false;
  out = static_cast<std::uint64_t>(v);
  return true;
}

bool parse_double_token(std::string_view tok, double& out) {
  if (tok.empty()) return false;
  const char front = tok.front();
  if (front == '-' || front == '+' ||
      std::isspace(static_cast<unsigned char>(front)))
    return false;
  const std::string buf(tok);
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size() || end == buf.c_str() ||
      errno == ERANGE || !std::isfinite(v))
    return false;
  out = v;
  return true;
}

std::string format_fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

std::string format_grouped(long long value) {
  const bool neg = value < 0;
  unsigned long long v =
      neg ? 0ULL - static_cast<unsigned long long>(value)
          : static_cast<unsigned long long>(value);
  std::string digits = std::to_string(v);
  std::string out;
  int run = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (run == 3) {
      out.push_back(',');
      run = 0;
    }
    out.push_back(*it);
    ++run;
  }
  if (neg) out.push_back('-');
  return {out.rbegin(), out.rend()};
}

}  // namespace cvmt
