#include "support/string_util.hpp"

#include <cctype>
#include <cstdio>

namespace cvmt {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view s) {
  const auto is_space = [](char c) {
    return std::isspace(static_cast<unsigned char>(c)) != 0;
  };
  while (!s.empty() && is_space(s.front())) s.remove_prefix(1);
  while (!s.empty() && is_space(s.back())) s.remove_suffix(1);
  return s;
}

std::string to_upper(std::string_view s) {
  std::string out(s);
  for (char& c : out)
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

std::string format_fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

std::string format_grouped(long long value) {
  const bool neg = value < 0;
  unsigned long long v =
      neg ? 0ULL - static_cast<unsigned long long>(value)
          : static_cast<unsigned long long>(value);
  std::string digits = std::to_string(v);
  std::string out;
  int run = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (run == 3) {
      out.push_back(',');
      run = 0;
    }
    out.push_back(*it);
    ++run;
  }
  if (neg) out.push_back('-');
  return {out.rbegin(), out.rend()};
}

}  // namespace cvmt
