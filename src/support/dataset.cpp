#include "support/dataset.hpp"

#include <array>
#include <charconv>
#include <ostream>

#include "support/check.hpp"
#include "support/string_util.hpp"

namespace cvmt {

std::string_view to_string(ColumnType t) {
  switch (t) {
    case ColumnType::kString: return "string";
    case ColumnType::kReal: return "real";
    case ColumnType::kInt: return "int";
  }
  return "?";
}

ColumnType column_type_from_string(std::string_view s) {
  if (s == "string") return ColumnType::kString;
  if (s == "real") return ColumnType::kReal;
  if (s == "int") return ColumnType::kInt;
  CVMT_CHECK_MSG(false, "unknown column type: " + std::string(s));
  __builtin_unreachable();
}

ColumnSpec ColumnSpec::str(std::string name) {
  ColumnSpec c;
  c.name = std::move(name);
  c.type = ColumnType::kString;
  return c;
}

ColumnSpec ColumnSpec::real(std::string name, int decimals,
                            std::string suffix) {
  ColumnSpec c;
  c.name = std::move(name);
  c.type = ColumnType::kReal;
  c.decimals = decimals;
  c.suffix = std::move(suffix);
  return c;
}

ColumnSpec ColumnSpec::integer(std::string name, bool grouped) {
  ColumnSpec c;
  c.name = std::move(name);
  c.type = ColumnType::kInt;
  c.grouped = grouped;
  return c;
}

Dataset::Dataset(std::vector<ColumnSpec> columns)
    : columns_(std::move(columns)) {
  CVMT_CHECK_MSG(!columns_.empty(), "Dataset needs at least one column");
}

std::size_t Dataset::num_rows() const {
  std::size_t n = 0;
  for (const auto& row : rows_)
    if (!row.empty()) ++n;
  return n;
}

std::size_t Dataset::col_index(std::string_view name) const {
  for (std::size_t c = 0; c < columns_.size(); ++c)
    if (columns_[c].name == name) return c;
  CVMT_CHECK_MSG(false, "unknown Dataset column: " + std::string(name));
  __builtin_unreachable();
}

void Dataset::add_row(std::vector<Cell> cells) {
  CVMT_CHECK_MSG(cells.size() == columns_.size(),
                 "row width must match the declared columns");
  for (std::size_t c = 0; c < cells.size(); ++c) {
    const Cell& cell = cells[c];
    if (std::holds_alternative<std::monostate>(cell)) continue;
    const ColumnType t = columns_[c].type;
    const bool ok =
        (t == ColumnType::kString &&
         std::holds_alternative<std::string>(cell)) ||
        (t == ColumnType::kReal && std::holds_alternative<double>(cell)) ||
        (t == ColumnType::kInt &&
         std::holds_alternative<std::int64_t>(cell));
    CVMT_CHECK_MSG(ok, "cell type does not match column '" +
                           columns_[c].name + "'");
  }
  rows_.push_back(std::move(cells));
}

void Dataset::add_separator() { rows_.emplace_back(); }

const Cell& Dataset::cell(std::size_t row, std::size_t col) const {
  CVMT_CHECK(col < columns_.size());
  std::size_t n = 0;
  for (const auto& r : rows_) {
    if (r.empty()) continue;
    if (n == row) return r[col];
    ++n;
  }
  CVMT_CHECK_MSG(false, "Dataset row index out of range");
  __builtin_unreachable();
}

double Dataset::real_at(std::size_t row, std::size_t col) const {
  return std::get<double>(cell(row, col));
}

std::int64_t Dataset::int_at(std::size_t row, std::size_t col) const {
  return std::get<std::int64_t>(cell(row, col));
}

const std::string& Dataset::str_at(std::size_t row, std::size_t col) const {
  return std::get<std::string>(cell(row, col));
}

namespace {

std::string format_typed(const ColumnSpec& spec, const Cell& cell) {
  if (std::holds_alternative<std::monostate>(cell)) return spec.null_text;
  std::string text;
  switch (spec.type) {
    case ColumnType::kString: text = std::get<std::string>(cell); break;
    case ColumnType::kReal:
      text = format_fixed(std::get<double>(cell), spec.decimals);
      break;
    case ColumnType::kInt: {
      const std::int64_t v = std::get<std::int64_t>(cell);
      text = spec.grouped ? format_grouped(v) : std::to_string(v);
      break;
    }
  }
  return text + spec.suffix;
}

std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n\r") == std::string::npos) return s;
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string round_trip_real(double d) {
  std::array<char, 32> buf{};
  const auto [end, ec] =
      std::to_chars(buf.data(), buf.data() + buf.size(), d);
  CVMT_CHECK(ec == std::errc());
  return std::string(buf.data(), static_cast<std::size_t>(end - buf.data()));
}

}  // namespace

std::string Dataset::format_cell(std::size_t row, std::size_t col) const {
  return format_typed(columns_[col], cell(row, col));
}

TableWriter Dataset::to_table() const {
  std::vector<std::string> header;
  header.reserve(columns_.size());
  for (const ColumnSpec& c : columns_) header.push_back(c.name);
  TableWriter t(std::move(header));
  for (const auto& row : rows_) {
    if (row.empty()) {
      t.add_separator();
      continue;
    }
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c)
      cells.push_back(format_typed(columns_[c], row[c]));
    t.add_row(std::move(cells));
  }
  return t;
}

void Dataset::write_csv(std::ostream& os) const {
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    if (c) os << ',';
    os << csv_escape(columns_[c].name);
  }
  os << '\n';
  for (const auto& row : rows_) {
    if (row.empty()) continue;
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      const Cell& cell = row[c];
      if (std::holds_alternative<std::monostate>(cell)) continue;
      switch (columns_[c].type) {
        case ColumnType::kString:
          os << csv_escape(std::get<std::string>(cell));
          break;
        case ColumnType::kReal:
          os << round_trip_real(std::get<double>(cell));
          break;
        case ColumnType::kInt: os << std::get<std::int64_t>(cell); break;
      }
    }
    os << '\n';
  }
}

Dataset Dataset::from_csv(std::vector<ColumnSpec> columns,
                          std::string_view text) {
  // Minimal CSV reader for write_csv output: quoted fields may contain
  // commas/newlines; "" inside quotes is a literal quote.
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> fields;
  std::string field;
  bool in_quotes = false;
  bool line_has_content = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      continue;
    }
    if (c == '"') {
      in_quotes = true;
      line_has_content = true;
    } else if (c == ',') {
      fields.push_back(std::move(field));
      field.clear();
      line_has_content = true;
    } else if (c == '\n') {
      if (line_has_content || !field.empty()) {
        fields.push_back(std::move(field));
        records.push_back(std::move(fields));
      }
      field.clear();
      fields.clear();
      line_has_content = false;
    } else if (c != '\r') {
      field += c;
    }
  }
  CVMT_CHECK_MSG(!in_quotes, "unterminated quoted CSV field");
  if (line_has_content || !field.empty()) {
    fields.push_back(std::move(field));
    records.push_back(std::move(fields));
  }
  CVMT_CHECK_MSG(!records.empty(), "CSV text has no header row");

  Dataset ds(std::move(columns));
  CVMT_CHECK_MSG(records.front().size() == ds.columns_.size(),
                 "CSV header width does not match the declared columns");
  for (std::size_t c = 0; c < ds.columns_.size(); ++c)
    CVMT_CHECK_MSG(records.front()[c] == ds.columns_[c].name,
                   "CSV header mismatch at column " + std::to_string(c));

  for (std::size_t r = 1; r < records.size(); ++r) {
    const auto& rec = records[r];
    CVMT_CHECK_MSG(rec.size() == ds.columns_.size(),
                   "CSV row width mismatch at row " + std::to_string(r));
    std::vector<Cell> cells;
    cells.reserve(rec.size());
    for (std::size_t c = 0; c < rec.size(); ++c) {
      const std::string& f = rec[c];
      switch (ds.columns_[c].type) {
        case ColumnType::kString: cells.emplace_back(f); break;
        case ColumnType::kReal: {
          if (f.empty()) {
            cells.emplace_back(std::monostate{});
            break;
          }
          double d = 0.0;
          const auto [p, ec] =
              std::from_chars(f.data(), f.data() + f.size(), d);
          CVMT_CHECK_MSG(ec == std::errc() && p == f.data() + f.size(),
                         "bad real CSV field: " + f);
          cells.emplace_back(d);
          break;
        }
        case ColumnType::kInt: {
          if (f.empty()) {
            cells.emplace_back(std::monostate{});
            break;
          }
          std::int64_t i = 0;
          const auto [p, ec] =
              std::from_chars(f.data(), f.data() + f.size(), i);
          CVMT_CHECK_MSG(ec == std::errc() && p == f.data() + f.size(),
                         "bad integer CSV field: " + f);
          cells.emplace_back(i);
          break;
        }
      }
    }
    ds.add_row(std::move(cells));
  }
  return ds;
}

JsonValue Dataset::to_json() const {
  JsonValue cols = JsonValue::array();
  for (const ColumnSpec& c : columns_) {
    JsonValue col = JsonValue::object();
    col.set("name", c.name);
    col.set("type", to_string(c.type));
    cols.push_back(std::move(col));
  }
  JsonValue rows = JsonValue::array();
  for (const auto& row : rows_) {
    if (row.empty()) continue;
    JsonValue jrow = JsonValue::array();
    for (const Cell& cell : row) {
      if (std::holds_alternative<std::monostate>(cell))
        jrow.push_back(JsonValue());
      else if (const auto* s = std::get_if<std::string>(&cell))
        jrow.push_back(*s);
      else if (const auto* d = std::get_if<double>(&cell))
        jrow.push_back(*d);
      else
        jrow.push_back(std::get<std::int64_t>(cell));
    }
    rows.push_back(std::move(jrow));
  }
  JsonValue out = JsonValue::object();
  out.set("columns", std::move(cols));
  out.set("rows", std::move(rows));
  return out;
}

Dataset Dataset::from_json(const JsonValue& v) {
  const JsonValue& cols = v.get("columns");
  std::vector<ColumnSpec> specs;
  for (std::size_t c = 0; c < cols.size(); ++c) {
    ColumnSpec spec;
    spec.name = cols.at(c).get("name").as_string();
    spec.type = column_type_from_string(cols.at(c).get("type").as_string());
    specs.push_back(std::move(spec));
  }
  Dataset ds(std::move(specs));
  const JsonValue& rows = v.get("rows");
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const JsonValue& jrow = rows.at(r);
    CVMT_CHECK_MSG(jrow.size() == ds.columns_.size(),
                   "JSON row width mismatch at row " + std::to_string(r));
    std::vector<Cell> cells;
    for (std::size_t c = 0; c < jrow.size(); ++c) {
      const JsonValue& jc = jrow.at(c);
      if (jc.is_null()) {
        cells.emplace_back(std::monostate{});
        continue;
      }
      switch (ds.columns_[c].type) {
        case ColumnType::kString: cells.emplace_back(jc.as_string()); break;
        case ColumnType::kReal: cells.emplace_back(jc.as_double()); break;
        case ColumnType::kInt: cells.emplace_back(jc.as_int()); break;
      }
    }
    ds.add_row(std::move(cells));
  }
  return ds;
}

}  // namespace cvmt
