#include "mem/memory_system.hpp"

namespace cvmt {

MemorySystem::MemorySystem(const MemorySystemConfig& config, int num_threads)
    : config_(config), num_threads_(num_threads) {
  CVMT_CHECK(num_threads >= 1);
  const int n = config.sharing == CacheSharing::kShared ? 1 : num_threads;
  icaches_.reserve(static_cast<std::size_t>(n));
  dcaches_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    icaches_.emplace_back(config.icache);
    dcaches_.emplace_back(config.dcache);
  }
}

SetAssocCache& MemorySystem::icache_for(int tid) {
  CVMT_DCHECK(tid >= 0 && tid < num_threads_);
  return icaches_[config_.sharing == CacheSharing::kShared
                      ? 0
                      : static_cast<std::size_t>(tid)];
}

SetAssocCache& MemorySystem::dcache_for(int tid) {
  CVMT_DCHECK(tid >= 0 && tid < num_threads_);
  return dcaches_[config_.sharing == CacheSharing::kShared
                      ? 0
                      : static_cast<std::size_t>(tid)];
}

MemAccessResult MemorySystem::fetch(int tid, std::uint64_t pc) {
  if (config_.perfect) return {true, 0};
  const bool hit = icache_for(tid).access(pc);
  return {hit, hit ? 0 : config_.icache.miss_penalty};
}

MemAccessResult MemorySystem::data_access(int tid, std::uint64_t addr) {
  if (config_.perfect) return {true, 0};
  const bool hit = dcache_for(tid).access(addr);
  return {hit, hit ? 0 : config_.dcache.miss_penalty};
}

void MemorySystem::reset() {
  for (SetAssocCache& c : icaches_) c.reset();
  for (SetAssocCache& c : dcaches_) c.reset();
}

RatioCounter MemorySystem::icache_stats() const {
  RatioCounter total;
  for (const auto& c : icaches_) {
    total.hits += c.stats().hits;
    total.total += c.stats().total;
  }
  return total;
}

RatioCounter MemorySystem::dcache_stats() const {
  RatioCounter total;
  for (const auto& c : dcaches_) {
    total.hits += c.stats().hits;
    total.total += c.stats().total;
  }
  return total;
}

}  // namespace cvmt
