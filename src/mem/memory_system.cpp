#include "mem/memory_system.hpp"

#include <bit>

namespace cvmt {

void MemorySystemConfig::validate() const {
  icache.validate();
  dcache.validate();
  if (has_l2) l2.validate();
  CVMT_CHECK_MSG(dcache_banks >= 1 &&
                     std::has_single_bit(
                         static_cast<unsigned>(dcache_banks)),
                 "dcache bank count must be a power of two");
  CVMT_CHECK_MSG(bank_conflict_penalty >= 0,
                 "negative bank conflict penalty");
}

MemorySystem::MemorySystem(const MemorySystemConfig& config, int num_threads)
    : config_(config), num_threads_(num_threads) {
  CVMT_CHECK(num_threads >= 1);
  config.validate();
  dbank_shift_ = static_cast<std::uint32_t>(
      std::countr_zero(config.dcache.line_bytes));
  const int n = config.sharing == CacheSharing::kShared ? 1 : num_threads;
  icaches_.reserve(static_cast<std::size_t>(n));
  dcaches_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    icaches_.emplace_back(config.icache);
    dcaches_.emplace_back(config.dcache);
  }
  if (config.has_l2) l2_.emplace_back(config.l2);
}

SetAssocCache& MemorySystem::icache_for(int tid) {
  CVMT_DCHECK(tid >= 0 && tid < num_threads_);
  return icaches_[config_.sharing == CacheSharing::kShared
                      ? 0
                      : static_cast<std::size_t>(tid)];
}

SetAssocCache& MemorySystem::dcache_for(int tid) {
  CVMT_DCHECK(tid >= 0 && tid < num_threads_);
  return dcaches_[config_.sharing == CacheSharing::kShared
                      ? 0
                      : static_cast<std::size_t>(tid)];
}

MemAccessResult MemorySystem::fetch(int tid, std::uint64_t pc) {
  if (config_.perfect) return {true, 0, 0};
  const bool hit = icache_for(tid).access(pc);
  if (hit) return {true, 0, 0};
  int penalty = config_.icache.miss_penalty;
  if (!l2_.empty() && !l2_[0].access(pc)) penalty += config_.l2.miss_penalty;
  return {false, penalty, 0};
}

MemAccessResult MemorySystem::data_access(int tid, std::uint64_t addr) {
  if (config_.perfect) return {true, 0, 0};
  const int bank = bank_of(addr);
  const bool hit = dcache_for(tid).access(addr);
  if (hit) return {true, 0, bank};
  int penalty = config_.dcache.miss_penalty;
  if (!l2_.empty() && !l2_[0].access(addr))
    penalty += config_.l2.miss_penalty;
  return {false, penalty, bank};
}

void MemorySystem::reset() {
  for (SetAssocCache& c : icaches_) c.reset();
  for (SetAssocCache& c : dcaches_) c.reset();
  for (SetAssocCache& c : l2_) c.reset();
}

RatioCounter MemorySystem::icache_stats() const {
  RatioCounter total;
  for (const auto& c : icaches_) {
    total.hits += c.stats().hits;
    total.total += c.stats().total;
  }
  return total;
}

RatioCounter MemorySystem::dcache_stats() const {
  RatioCounter total;
  for (const auto& c : dcaches_) {
    total.hits += c.stats().hits;
    total.total += c.stats().total;
  }
  return total;
}

RatioCounter MemorySystem::l2_stats() const {
  RatioCounter total;
  for (const auto& c : l2_) {
    total.hits += c.stats().hits;
    total.total += c.stats().total;
  }
  return total;
}

}  // namespace cvmt
