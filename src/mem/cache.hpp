// Set-associative cache model with true LRU replacement.
//
// The paper's evaluation machine has 64KB 4-way ICache and DCache with a
// 20-cycle miss penalty (§5.1). Misses block the accessing thread; the
// multithreaded core keeps issuing the other threads, which is where the
// throughput gains of merging come from.
#pragma once

#include <cstdint>
#include <vector>

#include "support/check.hpp"
#include "support/stats.hpp"

namespace cvmt {

/// Geometry and timing of one cache.
struct CacheConfig {
  std::uint64_t size_bytes = 64 * 1024;
  std::uint32_t line_bytes = 64;
  std::uint32_t ways = 4;
  int miss_penalty = 20;  ///< extra cycles on a miss

  void validate() const;
  [[nodiscard]] std::uint64_t num_sets() const {
    return size_bytes / (static_cast<std::uint64_t>(line_bytes) * ways);
  }

  [[nodiscard]] friend bool operator==(const CacheConfig&,
                                       const CacheConfig&) = default;
};

/// Blocking set-associative cache with true LRU. Tag state only — data
/// values never matter to timing, so none are stored.
class SetAssocCache {
 public:
  explicit SetAssocCache(const CacheConfig& config);

  /// Looks up `addr`, fills on miss, updates LRU. Returns true on hit.
  /// The single-probe MRU fast path is inline — consecutive accesses
  /// mostly re-touch the last line (sequential fetches stream through a
  /// 64B line), and the probe is cheap enough that the call overhead of
  /// an outlined lookup would dominate it. See mru_line_'s comment for
  /// why the probe is exactly the way scan's hit path.
  bool access(std::uint64_t addr) {
    const std::uint64_t set = set_index(addr);
    const std::uint64_t tag = tag_of(addr);
    ++clock_;
    if (mru_line_ != nullptr && mru_set_ == set && mru_line_->gen == gen_ &&
        mru_line_->tag == tag) {
      mru_line_->last_used = clock_;
      stats_.record(true);
      return true;
    }
    return access_scan(set, tag);
  }

  /// access() past the MRU probe: way scan, then victim fill on a miss.
  /// Also inline — interleaved data streams (several threads sharing one
  /// DCache) defeat the MRU probe, making the scan the common path there.
  bool access_scan(std::uint64_t set, std::uint64_t tag) {
    Line* base = &lines_[set * config_.ways];

    // Hit path first (the common case): a tight tag scan with no
    // replacement bookkeeping. Only a miss pays for the victim search.
    for (std::uint32_t w = 0; w < config_.ways; ++w) {
      Line& line = base[w];
      if (line.gen == gen_ && line.tag == tag) {
        line.last_used = clock_;
        mru_set_ = set;
        mru_line_ = &line;
        stats_.record(true);
        return true;
      }
    }
    return fill(base, set, tag);
  }

  /// True if the line holding `addr` is currently resident (no LRU update,
  /// no fill). Used by tests and warm-up inspection.
  [[nodiscard]] bool contains(std::uint64_t addr) const;

  /// Invalidates all lines and resets the LRU clock (stats are kept).
  /// O(1): validity is generation-tagged, so no line is touched.
  void flush();

  /// Restores the freshly-constructed state: every line invalid, LRU clock
  /// and statistics zeroed. Unlike flush(), a reset cache is bit-identical
  /// to a newly built one — the session layer reuses cache arrays across
  /// runs on this guarantee. O(1) (generation bump), which is what makes
  /// per-run instance reuse cheaper than reconstruction.
  void reset();

  [[nodiscard]] const CacheConfig& config() const { return config_; }
  [[nodiscard]] const RatioCounter& stats() const { return stats_; }
  [[nodiscard]] std::uint64_t misses() const {
    return stats_.total - stats_.hits;
  }

 private:
  /// A line is valid iff `gen` equals the cache's current generation.
  /// flush()/reset() invalidate every line by bumping the generation —
  /// O(1) instead of rewriting the (tens-of-KB) line array, so reusing a
  /// cache across simulation runs costs nothing. Lines start at gen 0,
  /// the cache at gen 1: a fresh cache has only invalid lines.
  struct Line {
    std::uint64_t tag = 0;
    std::uint64_t last_used = 0;
    std::uint64_t gen = 0;
  };

  [[nodiscard]] std::uint64_t set_index(std::uint64_t addr) const {
    return (addr >> line_shift_) & (num_sets_ - 1);
  }
  [[nodiscard]] std::uint64_t tag_of(std::uint64_t addr) const {
    return (addr >> line_shift_) >> set_shift_;
  }
  /// Miss tail of access_scan(): victim search and fill.
  bool fill(Line* base, std::uint64_t set, std::uint64_t tag);

  CacheConfig config_;
  std::uint64_t num_sets_;
  /// line_bytes and num_sets are validated powers of two; shifting beats
  /// the two 64-bit divisions that used to sit in every lookup.
  std::uint32_t line_shift_ = 0;
  std::uint32_t set_shift_ = 0;
  std::vector<Line> lines_;  // num_sets_ x ways, row-major
  std::uint64_t gen_ = 1;
  std::uint64_t clock_ = 0;
  /// Most recently hit/filled line, for the single-probe fast path in
  /// access(). Valid tags are unique within a set (fills happen only on
  /// misses), so when the remembered line still matches (set, tag, gen)
  /// it *is* the line the way scan would find — the fast path repeats the
  /// scan's hit bookkeeping exactly and is bit-identical. lines_ never
  /// reallocates after construction, so the pointer stays safe; a stale
  /// generation (flush/reset) simply fails the probe.
  std::uint64_t mru_set_ = 0;
  Line* mru_line_ = nullptr;
  RatioCounter stats_;
};

}  // namespace cvmt
