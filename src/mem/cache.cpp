#include "mem/cache.hpp"

#include <bit>

namespace cvmt {

void CacheConfig::validate() const {
  CVMT_CHECK_MSG(std::has_single_bit(static_cast<std::uint64_t>(line_bytes)),
                 "line size must be a power of two");
  CVMT_CHECK_MSG(ways >= 1, "at least one way");
  CVMT_CHECK_MSG(size_bytes % (static_cast<std::uint64_t>(line_bytes) * ways)
                     == 0,
                 "size must be a multiple of line*ways");
  CVMT_CHECK_MSG(std::has_single_bit(num_sets()),
                 "set count must be a power of two");
  CVMT_CHECK_MSG(miss_penalty >= 0, "negative miss penalty");
}

SetAssocCache::SetAssocCache(const CacheConfig& config)
    : config_(config), num_sets_(config.num_sets()) {
  config_.validate();
  lines_.resize(num_sets_ * config_.ways);
  line_shift_ = static_cast<std::uint32_t>(
      std::countr_zero(static_cast<std::uint64_t>(config_.line_bytes)));
  set_shift_ = static_cast<std::uint32_t>(std::countr_zero(num_sets_));
}

bool SetAssocCache::fill(Line* base, std::uint64_t set, std::uint64_t tag) {
  // Prefer an invalid way; otherwise the least recently used one.
  Line* victim = base;
  for (std::uint32_t w = 1; w < config_.ways; ++w) {
    Line& line = base[w];
    if (victim->gen != gen_) break;
    if (line.gen != gen_ || line.last_used < victim->last_used)
      victim = &line;
  }
  victim->gen = gen_;
  victim->tag = tag;
  victim->last_used = clock_;
  mru_set_ = set;
  mru_line_ = victim;
  stats_.record(false);
  return false;
}

bool SetAssocCache::contains(std::uint64_t addr) const {
  const std::uint64_t set = set_index(addr);
  const std::uint64_t tag = tag_of(addr);
  const Line* base = &lines_[set * config_.ways];
  for (std::uint32_t w = 0; w < config_.ways; ++w)
    if (base[w].gen == gen_ && base[w].tag == tag) return true;
  return false;
}

void SetAssocCache::flush() {
  ++gen_;  // every line's generation is now stale = invalid
  clock_ = 0;
}

void SetAssocCache::reset() {
  flush();
  stats_ = RatioCounter{};
}

}  // namespace cvmt
