#include "mem/cache.hpp"

#include <bit>

namespace cvmt {

void CacheConfig::validate() const {
  CVMT_CHECK_MSG(std::has_single_bit(static_cast<std::uint64_t>(line_bytes)),
                 "line size must be a power of two");
  CVMT_CHECK_MSG(ways >= 1, "at least one way");
  CVMT_CHECK_MSG(size_bytes % (static_cast<std::uint64_t>(line_bytes) * ways)
                     == 0,
                 "size must be a multiple of line*ways");
  CVMT_CHECK_MSG(std::has_single_bit(num_sets()),
                 "set count must be a power of two");
  CVMT_CHECK_MSG(miss_penalty >= 0, "negative miss penalty");
}

SetAssocCache::SetAssocCache(const CacheConfig& config)
    : config_(config), num_sets_(config.num_sets()) {
  config_.validate();
  lines_.resize(num_sets_ * config_.ways);
}

std::uint64_t SetAssocCache::set_index(std::uint64_t addr) const {
  return (addr / config_.line_bytes) & (num_sets_ - 1);
}

std::uint64_t SetAssocCache::tag_of(std::uint64_t addr) const {
  return (addr / config_.line_bytes) / num_sets_;
}

bool SetAssocCache::access(std::uint64_t addr) {
  const std::uint64_t set = set_index(addr);
  const std::uint64_t tag = tag_of(addr);
  Line* base = &lines_[set * config_.ways];
  ++clock_;

  Line* victim = base;
  for (std::uint32_t w = 0; w < config_.ways; ++w) {
    Line& line = base[w];
    if (line.valid && line.tag == tag) {
      line.last_used = clock_;
      stats_.record(true);
      return true;
    }
    // Prefer an invalid way; otherwise the least recently used one.
    if (!line.valid) {
      if (victim->valid) victim = &line;
    } else if (victim->valid && line.last_used < victim->last_used) {
      victim = &line;
    }
  }
  victim->valid = true;
  victim->tag = tag;
  victim->last_used = clock_;
  stats_.record(false);
  return false;
}

bool SetAssocCache::contains(std::uint64_t addr) const {
  const std::uint64_t set = set_index(addr);
  const std::uint64_t tag = tag_of(addr);
  const Line* base = &lines_[set * config_.ways];
  for (std::uint32_t w = 0; w < config_.ways; ++w)
    if (base[w].valid && base[w].tag == tag) return true;
  return false;
}

void SetAssocCache::flush() {
  for (Line& line : lines_) line = Line{};
  clock_ = 0;
}

}  // namespace cvmt
