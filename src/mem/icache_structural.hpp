// Structurally-eviction-free ICache detection.
//
// A workload's instruction fetch behaviour in a *shared* L1 ICache is
// fully decided up front when the programs' static line sets cannot
// collide: every PC a thread can ever fetch is a loop-body template pc
// plus that thread's address-space salt, so each thread's reachable line
// set is enumerable without running anything. If (1) the per-thread line
// sets are pairwise disjoint and (2) no cache set is mapped by more
// distinct lines than it has ways, then no fill ever evicts a valid line:
// once a line is resident it stays resident for the whole run. Hit/miss
// then collapses to "is this the thread's first touch of the line" — a
// pure property of the thread's own recorded stream, independent of the
// cross-thread interleaving, the merge scheme and the OS schedule. The
// batch engine uses this to replace the fetch-path cache walk with one
// precomputed bit per recorded instruction (see TraceReplay::first_touch)
// while staying bit-identical to the live cache: the skipped walk's only
// effect was internal LRU/tag state that no SimResult counter observes.
//
// The analysis is conservative and sound: it reasons over the *static*
// line set (every line a thread could fetch), a superset of any dynamic
// run's touched lines; eviction-freedom of the superset implies it for
// every execution and budget.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "mem/memory_system.hpp"
#include "trace/synthetic_program.hpp"

namespace cvmt {

/// Outcome of the eligibility analysis, with the failing condition named
/// (diagnostics and tests; the batch engine only reads `eligible`).
struct IcacheStructuralReport {
  bool eligible = false;
  std::string reason;  ///< empty when eligible
  /// Distinct static lines over all threads (valid when the line sets
  /// were actually enumerated, i.e. the config gates passed).
  std::uint64_t distinct_lines = 0;
  /// Largest number of distinct lines mapping to one cache set.
  std::uint32_t max_set_pressure = 0;
};

/// Decides whether the shared ICache of `mem` is structurally eviction
/// free for this workload: `programs[i]` running with address salt
/// `salts[i]` (one thread per program, see TraceGenerator::salt_for_seed).
///
/// Config gates (all must hold before the line sets even matter):
///   * sharing == kShared — with private per-slot caches a software
///     thread migrating across hardware slots splits its first-touch
///     history over several caches, so per-thread flags are wrong;
///   * !perfect — the perfect path never touches the cache and already
///     skips the walk (its stats stay zero by design);
///   * !has_l2 — an L1 miss would probe the shared L2, whose state also
///     depends on DCache traffic; skipping the fetch would diverge.
///
/// This variant reasons over the *static* line set (every line a thread
/// could ever fetch) — a superset of any run's touched lines, so
/// eligibility holds for every budget. It is also pessimistic: loop code
/// regions are 4KB apart while the default 256-set cache's set period is
/// 16KB, so a program with more than ~4 loops self-collides in sets and
/// full-program workloads rarely pass. Budget-bounded runs should use the
/// recorded variant below.
[[nodiscard]] IcacheStructuralReport analyze_icache_structural(
    std::span<const std::shared_ptr<const SyntheticProgram>> programs,
    std::span<const std::uint64_t> salts, const MemorySystemConfig& mem);

class TraceReplay;

/// The exact-variant the batch engine uses: per-thread line sets
/// enumerated from the recorded streams' entries [0, budget) — the salted
/// fetch PCs a budget-`budget` run can actually issue (a run fetches at
/// most `budget` entries per thread, in recording order; early exits
/// fetch a prefix). Exact instead of conservative, still sound and still
/// interleaving-invariant: the recording is a pure function of
/// (program, seed), so the verdict — like the first-touch flags it
/// enables — is a property of the workload, not of the schedule.
/// `replays[i]` must already cover `budget` entries.
[[nodiscard]] IcacheStructuralReport analyze_icache_structural_recorded(
    std::span<TraceReplay* const> replays, std::uint64_t budget,
    const MemorySystemConfig& mem);

}  // namespace cvmt
