// The memory hierarchy seen by the multithreaded core: one ICache and one
// DCache (shared by all hardware threads, as in the ST200-derived design),
// optionally private per thread or perfect (no misses) for the IPCp column
// of Table 1.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "mem/cache.hpp"

namespace cvmt {

/// Cache sharing arrangement across hardware threads.
enum class CacheSharing : std::uint8_t {
  kShared,   ///< one ICache + one DCache for all threads (default)
  kPrivate,  ///< per-thread caches (ablation)
};

/// Configuration of the whole memory system.
struct MemorySystemConfig {
  CacheConfig icache;  ///< 64KB 4-way, 20-cycle penalty by default
  CacheConfig dcache;
  CacheSharing sharing = CacheSharing::kShared;
  /// Perfect memory: every access hits (paper's IPCp measurements).
  bool perfect = false;

  [[nodiscard]] friend bool operator==(const MemorySystemConfig&,
                                       const MemorySystemConfig&) = default;
};

/// Result of a timed memory access.
struct MemAccessResult {
  bool hit = true;
  int penalty_cycles = 0;  ///< 0 on hit, miss_penalty on miss
};

/// Facade over the I/D caches with per-thread routing and aggregate stats.
class MemorySystem {
 public:
  MemorySystem(const MemorySystemConfig& config, int num_threads);

  /// Instruction fetch of the line holding `pc` by hardware thread `tid`.
  MemAccessResult fetch(int tid, std::uint64_t pc);

  /// Data access (load or store) by hardware thread `tid`.
  MemAccessResult data_access(int tid, std::uint64_t addr);

  /// Restores the freshly-constructed state of every cache (lines, LRU
  /// clocks and statistics) without reallocating the arrays. A reset
  /// memory system is bit-identical to a newly built one; the session
  /// layer reuses it across runs.
  void reset();

  [[nodiscard]] const MemorySystemConfig& config() const { return config_; }

  /// Aggregate hit-rate over all ICache (resp. DCache) instances.
  [[nodiscard]] RatioCounter icache_stats() const;
  [[nodiscard]] RatioCounter dcache_stats() const;

 private:
  [[nodiscard]] SetAssocCache& icache_for(int tid);
  [[nodiscard]] SetAssocCache& dcache_for(int tid);

  MemorySystemConfig config_;
  int num_threads_;
  std::vector<SetAssocCache> icaches_;  // 1 if shared, num_threads if private
  std::vector<SetAssocCache> dcaches_;
};

}  // namespace cvmt
