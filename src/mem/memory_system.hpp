// The memory hierarchy seen by the multithreaded core: one ICache and one
// DCache (shared by all hardware threads, as in the ST200-derived design),
// optionally private per thread or perfect (no misses) for the IPCp column
// of Table 1. An optional unified L2 sits under the L1s, and the DCache may
// be banked (line-interleaved); both default off, preserving the paper's
// flat single-level hierarchy bit-for-bit.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "mem/cache.hpp"

namespace cvmt {

/// Cache sharing arrangement across hardware threads.
enum class CacheSharing : std::uint8_t {
  kShared,   ///< one ICache + one DCache for all threads (default)
  kPrivate,  ///< per-thread caches (ablation)
};

/// Configuration of the whole memory system.
struct MemorySystemConfig {
  CacheConfig icache;  ///< 64KB 4-way, 20-cycle penalty by default
  CacheConfig dcache;
  CacheSharing sharing = CacheSharing::kShared;
  /// Perfect memory: every access hits (paper's IPCp measurements).
  bool perfect = false;

  /// Unified second-level cache under the L1s, always shared. An L1 miss
  /// probes the L2: an L2 hit costs the L1 miss penalty alone, an L2 miss
  /// adds the L2 miss penalty on top. Off by default (the paper's flat
  /// hierarchy: every L1 miss pays the full memory latency).
  bool has_l2 = false;
  CacheConfig l2{256 * 1024, 64, 8, 80};

  /// Line-interleaved DCache banks (power of two). With banks > 1, each
  /// data access reports its bank so the core can charge serialization
  /// when one packet's accesses collide on a bank. 1 = unbanked.
  int dcache_banks = 1;
  /// Extra cycles per same-packet access that re-touches a busy bank.
  int bank_conflict_penalty = 1;

  void validate() const;

  [[nodiscard]] friend bool operator==(const MemorySystemConfig&,
                                       const MemorySystemConfig&) = default;
};

/// Result of a timed memory access.
struct MemAccessResult {
  bool hit = true;
  int penalty_cycles = 0;  ///< 0 on hit; miss penalties of the levels missed
  int bank = 0;            ///< DCache bank touched (0 when unbanked)
};

/// Facade over the I/D caches with per-thread routing and aggregate stats.
class MemorySystem {
 public:
  MemorySystem(const MemorySystemConfig& config, int num_threads);

  /// Instruction fetch of the line holding `pc` by hardware thread `tid`.
  MemAccessResult fetch(int tid, std::uint64_t pc);

  /// Data access (load or store) by hardware thread `tid`.
  MemAccessResult data_access(int tid, std::uint64_t addr);

  /// Restores the freshly-constructed state of every cache (lines, LRU
  /// clocks and statistics) without reallocating the arrays. A reset
  /// memory system is bit-identical to a newly built one; the session
  /// layer reuses it across runs.
  void reset();

  /// Rebinds the system to a run with `num_threads` hardware threads
  /// without reconstruction. With shared caches the built arrays do not
  /// depend on the thread count, so any count fits; with private caches
  /// the per-thread arrays are sized at construction and only the same
  /// count fits. Returns false when reconstruction is required (the
  /// caller re-emplaces then). Does not reset; pair with reset() for a
  /// fresh run.
  [[nodiscard]] bool rebind(int num_threads) {
    if (config_.sharing == CacheSharing::kPrivate &&
        num_threads != num_threads_)
      return false;
    num_threads_ = num_threads;
    return true;
  }

  [[nodiscard]] const MemorySystemConfig& config() const { return config_; }

  /// Aggregate hit-rate over all ICache (resp. DCache) instances.
  [[nodiscard]] RatioCounter icache_stats() const;
  [[nodiscard]] RatioCounter dcache_stats() const;
  /// L2 hit-rate; zero counters when the machine has no L2.
  [[nodiscard]] RatioCounter l2_stats() const;

  /// The one shared DCache (requires sharing == kShared). The batch
  /// engine's fused replay kernel drives it directly — same access order,
  /// same RatioCounter, no per-access routing.
  [[nodiscard]] SetAssocCache& shared_dcache() {
    CVMT_DCHECK(config_.sharing == CacheSharing::kShared);
    return dcaches_[0];
  }

  /// DCache bank of `addr` (0 when unbanked). Line-interleaved.
  [[nodiscard]] int bank_of(std::uint64_t addr) const {
    return config_.dcache_banks > 1
               ? static_cast<int>((addr >> dbank_shift_) &
                                  static_cast<std::uint64_t>(
                                      config_.dcache_banks - 1))
               : 0;
  }

 private:
  [[nodiscard]] SetAssocCache& icache_for(int tid);
  [[nodiscard]] SetAssocCache& dcache_for(int tid);

  MemorySystemConfig config_;
  int num_threads_;
  std::uint32_t dbank_shift_ = 0;       // log2(dcache line bytes)
  std::vector<SetAssocCache> icaches_;  // 1 if shared, num_threads if private
  std::vector<SetAssocCache> dcaches_;
  std::vector<SetAssocCache> l2_;  // empty, or exactly one unified L2
};

}  // namespace cvmt
