#include "mem/icache_structural.hpp"

#include <algorithm>
#include <bit>

#include "support/check.hpp"
#include "trace/trace_replay.hpp"

namespace cvmt {
namespace {

/// The config gates shared by both variants. Returns false (with the
/// reason filled in) when the memory system rules structural fetch out
/// before any line set matters.
bool gates_pass(const MemorySystemConfig& mem,
                IcacheStructuralReport& report) {
  if (mem.perfect) {
    report.reason = "perfect memory (fetches never touch the cache)";
    return false;
  }
  if (mem.sharing != CacheSharing::kShared) {
    report.reason =
        "private ICaches (per-slot caches split a migrating thread's "
        "first-touch history)";
    return false;
  }
  if (mem.has_l2) {
    report.reason = "L2 present (an L1 fetch miss probes shared L2 state)";
    return false;
  }
  return true;
}

/// Disjointness + per-set-pressure verdict over per-thread sorted-unique
/// line sets (concatenated in `all_lines`, per-thread sizes summing to
/// `per_thread_sum`).
IcacheStructuralReport line_set_verdict(std::vector<std::uint64_t> all_lines,
                                        std::size_t per_thread_sum,
                                        const MemorySystemConfig& mem) {
  IcacheStructuralReport report;
  std::sort(all_lines.begin(), all_lines.end());
  all_lines.erase(std::unique(all_lines.begin(), all_lines.end()),
                  all_lines.end());
  report.distinct_lines = all_lines.size();
  if (all_lines.size() != per_thread_sum) {
    // Two threads can fetch the same line: one thread's compulsory miss
    // becomes the other's warm hit, so hit/miss depends on the
    // interleaving and no per-thread flag can capture it.
    report.reason = "thread line sets overlap (salt collision)";
    return report;
  }

  // Per-set pressure: with at most `ways` distinct lines mapping to any
  // set, LRU never has to evict a valid line — fills only take invalid
  // ways, and residency is permanent.
  const std::uint64_t num_sets = mem.icache.num_sets();
  std::vector<std::uint32_t> pressure(static_cast<std::size_t>(num_sets), 0);
  for (const std::uint64_t line : all_lines) {
    std::uint32_t& p =
        pressure[static_cast<std::size_t>(line & (num_sets - 1))];
    ++p;
    report.max_set_pressure = std::max(report.max_set_pressure, p);
  }
  if (report.max_set_pressure > mem.icache.ways) {
    report.reason = "set pressure " +
                    std::to_string(report.max_set_pressure) +
                    " exceeds ways " + std::to_string(mem.icache.ways);
    return report;
  }
  report.eligible = true;
  return report;
}

}  // namespace

IcacheStructuralReport analyze_icache_structural(
    std::span<const std::shared_ptr<const SyntheticProgram>> programs,
    std::span<const std::uint64_t> salts, const MemorySystemConfig& mem) {
  CVMT_CHECK_MSG(programs.size() == salts.size(),
                 "one salt per program required");
  IcacheStructuralReport report;
  if (!gates_pass(mem, report)) return report;

  // Static per-thread line sets: every fetchable PC is a loop-body
  // template pc plus the thread's salt (TraceGenerator::advance).
  const std::uint32_t line_shift = static_cast<std::uint32_t>(
      std::countr_zero(mem.icache.line_bytes));
  std::vector<std::uint64_t> all_lines;
  std::size_t per_thread_sum = 0;
  for (std::size_t t = 0; t < programs.size(); ++t) {
    CVMT_CHECK(programs[t] != nullptr);
    std::vector<std::uint64_t> lines;
    for (const SyntheticProgram::Loop& loop : programs[t]->loops())
      for (const Instruction& inst : loop.body)
        lines.push_back((inst.pc() + salts[t]) >> line_shift);
    std::sort(lines.begin(), lines.end());
    lines.erase(std::unique(lines.begin(), lines.end()), lines.end());
    per_thread_sum += lines.size();
    all_lines.insert(all_lines.end(), lines.begin(), lines.end());
  }
  IcacheStructuralReport verdict =
      line_set_verdict(std::move(all_lines), per_thread_sum, mem);
  return verdict;
}

IcacheStructuralReport analyze_icache_structural_recorded(
    std::span<TraceReplay* const> replays, std::uint64_t budget,
    const MemorySystemConfig& mem) {
  IcacheStructuralReport report;
  if (!gates_pass(mem, report)) return report;

  // Exact per-thread line sets from the recordings: entry i's pc is
  // already salted, and a run fetches at most entries [0, budget) per
  // thread, so these ARE the lines the cache can see.
  const std::uint32_t line_shift = static_cast<std::uint32_t>(
      std::countr_zero(mem.icache.line_bytes));
  std::vector<std::uint64_t> all_lines;
  std::size_t per_thread_sum = 0;
  std::vector<std::uint64_t> lines;
  for (TraceReplay* const replay : replays) {
    CVMT_CHECK(replay != nullptr);
    CVMT_CHECK_MSG(replay->recorded() >= budget,
                   "recording does not cover the budget");
    lines.clear();
    for (std::uint64_t i = 0; i < budget; ++i)
      lines.push_back(replay->entry(i).pc >> line_shift);
    std::sort(lines.begin(), lines.end());
    lines.erase(std::unique(lines.begin(), lines.end()), lines.end());
    per_thread_sum += lines.size();
    all_lines.insert(all_lines.end(), lines.begin(), lines.end());
  }
  return line_set_verdict(std::move(all_lines), per_thread_sum, mem);
}

}  // namespace cvmt
