#include "store/sweep_store.hpp"

#include <utility>

#include "support/check.hpp"

namespace cvmt {

SweepStore::SweepStore(Mode mode, std::string dir, ShardSpec shard,
                       JsonValue manifest)
    : mode_(mode),
      dir_(std::move(dir)),
      shard_(shard),
      manifest_(std::move(manifest)) {}

void SweepStore::load_logs() {
  // Logs from *every* shard load, not just this one's: a point another
  // shard finished earlier resumes here too, and once all shards have
  // run, any single rerun sees the complete grid (its derived sections
  // then compute from real values).
  for (const std::string& path : list_shard_logs(dir_)) {
    const LogScan scan = scan_log(path);
    for (const StoreRecord& rec : scan.records)
      results_[rec.key] = sim_result_from_json(rec.result);
  }
  loaded_ = results_.size();
}

std::unique_ptr<SweepStore> SweepStore::open_shard(
    const std::string& dir, ShardSpec shard, const JsonValue& manifest) {
  write_or_check_manifest(dir, manifest);
  std::unique_ptr<SweepStore> store(
      new SweepStore(Mode::kShard, dir, shard, manifest));
  store->load_logs();
  // The writer recovers (truncates) a torn tail before the first append;
  // scan_log above already refused to trust it, so a record lost to a
  // crash is recomputed, never resurrected.
  store->writer_ = std::make_unique<ShardLogWriter>(
      shard_log_path(dir, shard.index, shard.count));
  return store;
}

std::unique_ptr<SweepStore> SweepStore::open_merge(const std::string& dir) {
  JsonValue manifest = read_manifest(dir);
  const unsigned count = static_cast<unsigned>(
      manifest.get("shards").as_int());
  std::unique_ptr<SweepStore> store(new SweepStore(
      Mode::kReplay, dir, ShardSpec{0, count}, std::move(manifest)));
  store->load_logs();
  return store;
}

SimResult SweepStore::run_point(
    const BatchJob& job, const std::function<SimResult()>& compute) {
  const std::string key = point_key(job);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.total;
    if (const auto it = results_.find(key); it != results_.end()) {
      if (mode_ == Mode::kShard)
        ++counters_.resumed;
      else
        ++counters_.replayed;
      return it->second;
    }
  }
  if (mode_ == Mode::kReplay) {
    const unsigned owner = shard_of(key, shard_.count);
    throw CheckError(
        "store: '" + dir_ + "' is missing a grid point owned by shard " +
        std::to_string(owner) + "/" + std::to_string(shard_.count) +
        ".\n  resume it with: cvmt run " +
        manifest_.get("experiment").as_string() + " --shard " +
        std::to_string(owner) + "/" + std::to_string(shard_.count) +
        " --store " + dir_ + "\n  missing key: " + key);
  }
  if (shard_of(key, shard_.count) != shard_.index) {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.skipped;
    return SimResult{};
  }
  SimResult result;
  try {
    result = compute();
  } catch (...) {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.failed;
    throw;
  }
  const JsonValue json = sim_result_to_json(result);
  std::lock_guard<std::mutex> lock(mu_);
  // Recheck under the lock: two workers can race to the same key only if
  // an experiment enqueues a duplicate grid point; first append wins.
  if (results_.find(key) == results_.end()) {
    writer_->append(key, json);
    results_.emplace(key, result);
    ++counters_.computed;
  } else {
    ++counters_.resumed;
  }
  return result;
}

SweepStore::Counters SweepStore::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

}  // namespace cvmt
