// The on-disk result store behind sharded, resumable sweeps (DESIGN.md
// §12): completed grid points append to per-shard log files as
// length-prefixed, checksummed records, and a deterministic hash of each
// point's canonical key partitions the grid across shards.
//
// The log is crash-safe by construction, not by fsync discipline: a
// record is either entirely present with a matching checksum or it is
// the torn tail a SIGKILL left behind, and the tail is detected and
// truncated on the next open — never trusted, never repaired. Everything
// after the first bad record is discarded with it (log-structured
// semantics: the lost points simply recompute on resume).
//
// Keys reuse the session layer's canonical artifact keys
// (CompiledScheme::make_key; the workload and config serializations
// mirror sim/session.cpp), so a record written by one shard is
// recognised by any later run with the same logical inputs, regardless
// of process, worker count or lane count.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "exp/batch_runner.hpp"
#include "support/json.hpp"

namespace cvmt {

/// FNV-1a over `bytes`; the store's partitioning and checksum hash.
/// Stability matters: shard assignment and record checksums are on-disk
/// contracts, so this must never change.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view bytes);

/// One shard of a partitioned sweep: this process computes the points
/// whose key hashes to `index` out of `count`.
struct ShardSpec {
  unsigned index = 0;
  unsigned count = 1;
};

/// Parses the --shard argument "k/n" (k in [0, n), n in [1, 4096]).
/// Throws CheckError on anything else — a malformed shard spec must not
/// silently become "the whole grid".
[[nodiscard]] ShardSpec parse_shard_spec(const std::string& spec);

/// The canonical key of one grid point: the compiled scheme's cache key
/// (name + canonical tree + machine) plus the workload and the full
/// SimConfig, every double by bit pattern. Two BatchJobs collide on this
/// key only when the simulator contract guarantees bit-identical results.
[[nodiscard]] std::string point_key(const BatchJob& job);

/// The shard that owns `key` in an `count`-way partition.
[[nodiscard]] unsigned shard_of(std::string_view key, unsigned count);

/// SimResult <-> JSON, lossless: integers verbatim, doubles survive via
/// the JSON writer's shortest-round-trip formatting, the issued-per-cycle
/// histogram by its full internal state (Histogram::restored). A
/// from_json(to_json(r)) round trip reproduces `r` bit-for-bit, which is
/// what lets `cvmt merge` reproduce the unsharded output bytes.
[[nodiscard]] JsonValue sim_result_to_json(const SimResult& r);
[[nodiscard]] SimResult sim_result_from_json(const JsonValue& v);

/// One decoded log record.
struct StoreRecord {
  std::string key;
  JsonValue result;
};

/// Encodes one record: magic "CVS1", u32 payload length, u64 FNV-1a of
/// the payload (all little-endian), then the payload (compact JSON
/// {"key":..., "result":...}).
[[nodiscard]] std::string encode_record(const std::string& key,
                                        const JsonValue& result);

/// Outcome of scanning one shard log.
struct LogScan {
  std::vector<StoreRecord> records;  ///< every intact record, in order
  std::uint64_t good_bytes = 0;      ///< file offset after the last one
  bool torn = false;                 ///< trailing bytes were not a record
};

/// Decodes `path` front to back, stopping at the first record that is
/// short, misframed or fails its checksum (`torn` set, `good_bytes` at
/// the last intact boundary). A missing file is an empty, untorn log.
[[nodiscard]] LogScan scan_log(const std::string& path);

/// Append-only writer for one shard's log. On open, the existing file is
/// scanned and truncated to its last intact record boundary, so a tail
/// torn by a crash is discarded before anything new lands after it.
/// append() flushes per record; callers serialise access (the SweepStore
/// holds the lock).
class ShardLogWriter {
 public:
  explicit ShardLogWriter(std::string path);

  void append(const std::string& key, const JsonValue& result);

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::ofstream out_;
};

/// The log file of shard `index` of `count` inside the store directory.
[[nodiscard]] std::string shard_log_path(const std::string& dir,
                                         unsigned index, unsigned count);

/// Every shard log currently in `dir`, sorted by filename so merge-order
/// is deterministic.
[[nodiscard]] std::vector<std::string> list_shard_logs(
    const std::string& dir);

/// Installs `manifest` as DIR/manifest.json (atomic tmp+rename), or — if
/// one already exists — verifies byte-for-byte agreement and throws
/// CheckError on mismatch: a store directory binds one experiment with
/// one parameter set, and mixing two sweeps in it must fail loudly, not
/// merge into nonsense.
void write_or_check_manifest(const std::string& dir,
                             const JsonValue& manifest);

/// Reads DIR/manifest.json (CheckError when absent or malformed).
[[nodiscard]] JsonValue read_manifest(const std::string& dir);

}  // namespace cvmt
