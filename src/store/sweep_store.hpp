// The run_batch <-> result_store binding: a SweepStore mediates every
// grid point of a sharded or replayed sweep (BatchOptions::store).
//
// Shard mode (`cvmt run <id> --shard k/n --store DIR`): a point whose
// key hashes outside this shard is skipped (default-constructed result);
// a point already present in any shard log in DIR is returned from the
// loaded index without simulating (resume); everything else is computed
// and appended to this shard's own log before the result is returned.
//
// Replay mode (`cvmt merge --store DIR`): every point must already be in
// the logs; run_point never simulates, it only looks up — a missing
// point throws CheckError naming the shard command that will produce it.
// Because stored results round-trip bit-for-bit (result_store.hpp), the
// replayed experiment renders byte-identical table/CSV/JSON output to
// the unsharded run.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "store/result_store.hpp"

namespace cvmt {

class SweepStore {
 public:
  /// What happened to the grid points this run saw. `mine` is the
  /// shard's own share (computed + resumed); the resume test pins
  /// computed == 0 on a second run of a finished shard.
  struct Counters {
    std::uint64_t total = 0;     ///< run_point calls
    std::uint64_t computed = 0;  ///< simulated and appended this run
    std::uint64_t resumed = 0;   ///< served from a log (shard mode)
    std::uint64_t replayed = 0;  ///< served from a log (replay mode)
    std::uint64_t skipped = 0;   ///< other shards' points, not simulated
    std::uint64_t failed = 0;    ///< compute() threw (rethrown to caller)
  };

  /// Opens DIR as shard `shard.index` of `shard.count`: installs (or
  /// verifies) the manifest, recovers + loads every shard log already in
  /// DIR, and opens this shard's own log for appends.
  [[nodiscard]] static std::unique_ptr<SweepStore> open_shard(
      const std::string& dir, ShardSpec shard, const JsonValue& manifest);

  /// Opens DIR for replay: reads the manifest and loads every shard log;
  /// run_point serves lookups only.
  [[nodiscard]] static std::unique_ptr<SweepStore> open_merge(
      const std::string& dir);

  /// Mediates one grid point (thread-safe; run_batch workers share one
  /// SweepStore). `compute` runs outside the lock.
  [[nodiscard]] SimResult run_point(
      const BatchJob& job, const std::function<SimResult()>& compute);

  [[nodiscard]] Counters counters() const;
  [[nodiscard]] const JsonValue& manifest() const { return manifest_; }
  [[nodiscard]] const std::string& dir() const { return dir_; }
  [[nodiscard]] ShardSpec shard() const { return shard_; }
  /// Number of distinct grid points loaded from the logs at open.
  [[nodiscard]] std::size_t loaded_points() const { return loaded_; }

 private:
  enum class Mode : std::uint8_t { kShard, kReplay };

  SweepStore(Mode mode, std::string dir, ShardSpec shard,
             JsonValue manifest);

  void load_logs();

  const Mode mode_;
  const std::string dir_;
  const ShardSpec shard_;
  JsonValue manifest_;
  std::unique_ptr<ShardLogWriter> writer_;  // shard mode only
  std::size_t loaded_ = 0;

  mutable std::mutex mu_;
  std::map<std::string, SimResult, std::less<>> results_;
  Counters counters_;
};

}  // namespace cvmt
