#include "store/result_store.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <sstream>

#include "core/scheme.hpp"
#include "sim/session.hpp"
#include "support/check.hpp"
#include "support/string_util.hpp"

namespace cvmt {

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 14695981039346656037ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

ShardSpec parse_shard_spec(const std::string& spec) {
  const std::size_t slash = spec.find('/');
  std::uint64_t index = 0;
  std::uint64_t count = 0;
  const bool ok =
      slash != std::string::npos &&
      parse_u64_token(spec.substr(0, slash), index) &&
      parse_u64_token(spec.substr(slash + 1), count) && count >= 1 &&
      count <= 4096 && index < count;
  CVMT_CHECK_MSG(ok, "--shard/CVMT_SHARD must be k/n with 0 <= k < n <= "
                     "4096, got '" +
                         spec + "'");
  return ShardSpec{static_cast<unsigned>(index),
                   static_cast<unsigned>(count)};
}

namespace {

void append_u64(std::string& key, std::uint64_t v) {
  key += std::to_string(v);
  key += ',';
}

void append_cache(std::string& key, const CacheConfig& c) {
  append_u64(key, c.size_bytes);
  append_u64(key, c.line_bytes);
  append_u64(key, c.ways);
  append_u64(key, static_cast<std::uint64_t>(c.miss_penalty));
}

MergeKind merge_kind_from_char(char c) {
  switch (c) {
    case 'S': return MergeKind::kSmt;
    case 'C': return MergeKind::kCsmt;
    case 'I': return MergeKind::kSelect;
    default:
      CVMT_CHECK_MSG(false, std::string("store: unknown merge kind '") +
                                c + "'");
      __builtin_unreachable();
  }
}

}  // namespace

std::string point_key(const BatchJob& job) {
  const SimConfig& c = job.sim;
  std::string key = "R1|";
  key += CompiledScheme::make_key(job.scheme, c.machine);
  key += "|W:";
  for (const std::string& b : job.benchmarks) {
    key += b;
    key += ',';
  }
  // The full run configuration beyond the machine (which the scheme key
  // carries): any knob that can change a result must be here, so two
  // jobs share a record only when the simulator guarantees bit-identical
  // outcomes. Workers/lanes are deliberately absent — results are
  // bit-identical for any value (the batch runner's contract).
  key += "|C:";
  append_cache(key, c.mem.icache);
  append_cache(key, c.mem.dcache);
  append_u64(key, static_cast<std::uint64_t>(c.mem.sharing));
  append_u64(key, c.mem.perfect ? 1 : 0);
  append_u64(key, c.mem.has_l2 ? 1 : 0);
  append_cache(key, c.mem.l2);
  append_u64(key, static_cast<std::uint64_t>(c.mem.dcache_banks));
  append_u64(key,
             static_cast<std::uint64_t>(c.mem.bank_conflict_penalty));
  append_u64(key, static_cast<std::uint64_t>(c.priority));
  append_u64(key, static_cast<std::uint64_t>(c.miss_policy));
  append_u64(key, c.timeslice_cycles);
  append_u64(key, c.instruction_budget);
  append_u64(key, c.max_cycles);
  append_u64(key, c.os_seed);
  append_u64(key, c.stream_seed_base);
  append_u64(key, static_cast<std::uint64_t>(c.switch_policy));
  append_u64(key, static_cast<std::uint64_t>(c.stats));
  append_u64(key, static_cast<std::uint64_t>(c.eval_mode));
  append_u64(key, c.stall_fast_forward ? 1 : 0);
  return key;
}

unsigned shard_of(std::string_view key, unsigned count) {
  CVMT_CHECK(count >= 1);
  return static_cast<unsigned>(fnv1a64(key) %
                               static_cast<std::uint64_t>(count));
}

// --- SimResult <-> JSON ---------------------------------------------------

namespace {

JsonValue ratio_to_json(const RatioCounter& r) {
  JsonValue v = JsonValue::object();
  v.set("hits", r.hits);
  v.set("total", r.total);
  return v;
}

RatioCounter ratio_from_json(const JsonValue& v) {
  RatioCounter r;
  r.hits = static_cast<std::uint64_t>(v.get("hits").as_int());
  r.total = static_cast<std::uint64_t>(v.get("total").as_int());
  return r;
}

std::uint64_t u64_of(const JsonValue& v, std::string_view key) {
  return static_cast<std::uint64_t>(v.get(key).as_int());
}

}  // namespace

JsonValue sim_result_to_json(const SimResult& r) {
  JsonValue out = JsonValue::object();
  out.set("scheme", r.scheme);
  out.set("cycles", r.cycles);
  out.set("total_ops", r.total_ops);
  out.set("total_instructions", r.total_instructions);
  out.set("idle_cycles", r.idle_cycles);
  out.set("ipc", r.ipc);
  JsonValue threads = JsonValue::array();
  for (const ThreadResult& t : r.threads) {
    JsonValue tv = JsonValue::object();
    tv.set("benchmark", t.benchmark);
    tv.set("instructions", t.instructions);
    tv.set("ops", t.ops);
    JsonValue sv = JsonValue::object();
    sv.set("instructions", t.stats.instructions);
    sv.set("bubbles", t.stats.bubbles);
    sv.set("ops", t.stats.ops);
    sv.set("taken_branches", t.stats.taken_branches);
    sv.set("dcache_stall_cycles", t.stats.dcache_stall_cycles);
    sv.set("icache_stall_cycles", t.stats.icache_stall_cycles);
    sv.set("branch_stall_cycles", t.stats.branch_stall_cycles);
    sv.set("bank_conflict_cycles", t.stats.bank_conflict_cycles);
    tv.set("stats", std::move(sv));
    threads.push_back(std::move(tv));
  }
  out.set("threads", std::move(threads));
  out.set("icache", ratio_to_json(r.icache));
  out.set("dcache", ratio_to_json(r.dcache));
  out.set("l2", ratio_to_json(r.l2));
  JsonValue hist = JsonValue::object();
  JsonValue buckets = JsonValue::array();
  for (std::size_t i = 0; i < r.issued_per_cycle.num_buckets(); ++i)
    buckets.push_back(r.issued_per_cycle.bucket(i));
  hist.set("buckets", std::move(buckets));
  hist.set("total", r.issued_per_cycle.total());
  hist.set("weighted_sum", r.issued_per_cycle.weighted_sum());
  out.set("issued_per_cycle", std::move(hist));
  JsonValue nodes = JsonValue::array();
  for (const MergeNodeStats& n : r.merge_nodes) {
    JsonValue nv = JsonValue::object();
    nv.set("label", n.label);
    nv.set("kind", std::string(1, to_char(n.kind)));
    nv.set("attempts", n.attempts);
    nv.set("rejects", n.rejects);
    nodes.push_back(std::move(nv));
  }
  out.set("merge_nodes", std::move(nodes));
  JsonValue os = JsonValue::object();
  os.set("context_switches", r.os.context_switches);
  os.set("timeslices", r.os.timeslices);
  out.set("os", std::move(os));
  return out;
}

SimResult sim_result_from_json(const JsonValue& v) {
  SimResult r;
  r.scheme = v.get("scheme").as_string();
  r.cycles = u64_of(v, "cycles");
  r.total_ops = u64_of(v, "total_ops");
  r.total_instructions = u64_of(v, "total_instructions");
  r.idle_cycles = u64_of(v, "idle_cycles");
  r.ipc = v.get("ipc").as_double();
  const JsonValue& threads = v.get("threads");
  for (std::size_t i = 0; i < threads.size(); ++i) {
    const JsonValue& tv = threads.at(i);
    ThreadResult t;
    t.benchmark = tv.get("benchmark").as_string();
    t.instructions = u64_of(tv, "instructions");
    t.ops = u64_of(tv, "ops");
    const JsonValue& sv = tv.get("stats");
    t.stats.instructions = u64_of(sv, "instructions");
    t.stats.bubbles = u64_of(sv, "bubbles");
    t.stats.ops = u64_of(sv, "ops");
    t.stats.taken_branches = u64_of(sv, "taken_branches");
    t.stats.dcache_stall_cycles = u64_of(sv, "dcache_stall_cycles");
    t.stats.icache_stall_cycles = u64_of(sv, "icache_stall_cycles");
    t.stats.branch_stall_cycles = u64_of(sv, "branch_stall_cycles");
    t.stats.bank_conflict_cycles = u64_of(sv, "bank_conflict_cycles");
    r.threads.push_back(std::move(t));
  }
  r.icache = ratio_from_json(v.get("icache"));
  r.dcache = ratio_from_json(v.get("dcache"));
  r.l2 = ratio_from_json(v.get("l2"));
  const JsonValue& hist = v.get("issued_per_cycle");
  const JsonValue& buckets = hist.get("buckets");
  std::vector<std::uint64_t> counts;
  counts.reserve(buckets.size());
  for (std::size_t i = 0; i < buckets.size(); ++i)
    counts.push_back(static_cast<std::uint64_t>(buckets.at(i).as_int()));
  r.issued_per_cycle = Histogram::restored(
      std::move(counts), u64_of(hist, "total"),
      u64_of(hist, "weighted_sum"));
  const JsonValue& nodes = v.get("merge_nodes");
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const JsonValue& nv = nodes.at(i);
    MergeNodeStats n;
    n.label = nv.get("label").as_string();
    const std::string& kind = nv.get("kind").as_string();
    CVMT_CHECK_MSG(kind.size() == 1,
                   "store: malformed merge-node kind '" + kind + "'");
    n.kind = merge_kind_from_char(kind[0]);
    n.attempts = u64_of(nv, "attempts");
    n.rejects = u64_of(nv, "rejects");
    r.merge_nodes.push_back(std::move(n));
  }
  const JsonValue& os = v.get("os");
  r.os.context_switches = u64_of(os, "context_switches");
  r.os.timeslices = u64_of(os, "timeslices");
  return r;
}

// --- record codec ---------------------------------------------------------

namespace {

constexpr char kMagic[4] = {'C', 'V', 'S', '1'};
constexpr std::size_t kHeaderBytes = 4 + 4 + 8;
/// Framing sanity bound; a length beyond this is corruption, not data
/// (one grid point's JSON is a few KB).
constexpr std::uint64_t kMaxPayloadBytes = 1ULL << 30;

void put_le(std::string& out, std::uint64_t v, int bytes) {
  for (int i = 0; i < bytes; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

std::uint64_t get_le(const char* p, int bytes) {
  std::uint64_t v = 0;
  for (int i = 0; i < bytes; ++i)
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  return v;
}

}  // namespace

std::string encode_record(const std::string& key, const JsonValue& result) {
  JsonValue payload = JsonValue::object();
  payload.set("key", key);
  payload.set("result", result);
  const std::string body = payload.dump(-1);
  std::string out;
  out.reserve(kHeaderBytes + body.size());
  out.append(kMagic, sizeof kMagic);
  put_le(out, body.size(), 4);
  put_le(out, fnv1a64(body), 8);
  out += body;
  return out;
}

LogScan scan_log(const std::string& path) {
  LogScan scan;
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return scan;  // absent log = empty log
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string bytes = buf.str();

  std::size_t off = 0;
  while (off < bytes.size()) {
    if (bytes.size() - off < kHeaderBytes ||
        bytes.compare(off, sizeof kMagic, kMagic, sizeof kMagic) != 0)
      break;
    const std::uint64_t len = get_le(bytes.data() + off + 4, 4);
    const std::uint64_t sum = get_le(bytes.data() + off + 8, 8);
    if (len > kMaxPayloadBytes || bytes.size() - off - kHeaderBytes < len)
      break;
    const std::string_view body(bytes.data() + off + kHeaderBytes,
                                static_cast<std::size_t>(len));
    if (fnv1a64(body) != sum) break;
    StoreRecord rec;
    try {
      JsonValue payload = JsonValue::parse(body);
      rec.key = payload.get("key").as_string();
      rec.result = payload.get("result");
    } catch (const CheckError&) {
      break;  // checksummed but unparsable: treat as torn, same as above
    }
    scan.records.push_back(std::move(rec));
    off += kHeaderBytes + static_cast<std::size_t>(len);
  }
  scan.good_bytes = off;
  scan.torn = off != bytes.size();
  return scan;
}

ShardLogWriter::ShardLogWriter(std::string path) : path_(std::move(path)) {
  const LogScan scan = scan_log(path_);
  if (scan.torn) {
    std::fprintf(stderr,
                 "cvmt store: %s: discarding torn tail after %llu intact "
                 "bytes (crash recovery)\n",
                 path_.c_str(),
                 static_cast<unsigned long long>(scan.good_bytes));
    std::filesystem::resize_file(path_, scan.good_bytes);
  }
  out_.open(path_, std::ios::binary | std::ios::app);
  CVMT_CHECK_MSG(out_.is_open(),
                 "store: cannot open shard log for append: " + path_);
}

void ShardLogWriter::append(const std::string& key,
                            const JsonValue& result) {
  const std::string record = encode_record(key, result);
  out_.write(record.data(),
             static_cast<std::streamsize>(record.size()));
  out_.flush();
  CVMT_CHECK_MSG(out_.good(), "store: error appending to " + path_);
}

std::string shard_log_path(const std::string& dir, unsigned index,
                           unsigned count) {
  return dir + "/shard-" + std::to_string(index) + "-of-" +
         std::to_string(count) + ".log";
}

std::vector<std::string> list_shard_logs(const std::string& dir) {
  std::vector<std::string> logs;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.rfind("shard-", 0) == 0 &&
        name.size() > 4 && name.compare(name.size() - 4, 4, ".log") == 0)
      logs.push_back(entry.path().string());
  }
  std::sort(logs.begin(), logs.end());
  return logs;
}

// --- manifest -------------------------------------------------------------

namespace {

std::string manifest_path(const std::string& dir) {
  return dir + "/manifest.json";
}

}  // namespace

void write_or_check_manifest(const std::string& dir,
                             const JsonValue& manifest) {
  std::filesystem::create_directories(dir);
  const std::string path = manifest_path(dir);
  if (std::filesystem::exists(path)) {
    const JsonValue existing = read_manifest(dir);
    CVMT_CHECK_MSG(
        existing.dump(-1) == manifest.dump(-1),
        "store: " + path +
            " describes a different sweep than this command.\n  on disk: " +
            existing.dump(-1) + "\n  this run: " + manifest.dump(-1) +
            "\nA store directory binds one experiment with one parameter "
            "set; use a fresh --store directory.");
    return;
  }
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    manifest.write(out);
    out << '\n';
    out.flush();
    CVMT_CHECK_MSG(out.good(), "store: cannot write " + tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  CVMT_CHECK_MSG(!ec, "store: cannot install " + path);
}

JsonValue read_manifest(const std::string& dir) {
  std::ifstream in(manifest_path(dir), std::ios::binary);
  CVMT_CHECK_MSG(in.is_open(),
                 "store: no manifest in '" + dir +
                     "' (is this a --store directory written by `cvmt run "
                     "--store`?)");
  std::ostringstream buf;
  buf << in.rdbuf();
  return JsonValue::parse(buf.str());
}

}  // namespace cvmt
