#include "trace/trace_replay.hpp"

namespace cvmt {

void TraceReplay::ensure(std::uint64_t count) {
  while (entries_.size() < count) {
    gen_.advance();
    // Mirror of ThreadContext's live issue path: the patch list visits
    // exactly the memory and branch ops, in op order; everything else
    // about the packet is template-invariant.
    const Instruction& inst = gen_.current_instruction();
    Entry e;
    e.fp = &gen_.current_footprint();
    e.pc = gen_.current_pc();
    e.mem_begin = static_cast<std::uint32_t>(addrs_.size());
    e.op_count = static_cast<std::uint8_t>(inst.op_count());
    e.empty = inst.empty();
    e.taken = false;
    for (const std::uint8_t idx : gen_.current_patches()) {
      const Operation& op = inst.op(idx);
      if (is_memory(op.kind)) {
        addrs_.push_back(op.addr);
      } else if (op.taken) {
        e.taken = true;
      }
    }
    e.mem_count = static_cast<std::uint8_t>(addrs_.size() - e.mem_begin);
    entries_.push_back(e);
  }
}

const FirstTouchIndex& TraceReplay::first_touch(std::uint32_t line_shift,
                                                std::uint64_t count) {
  ensure(count);
  FirstTouchIndex* index = nullptr;
  for (const auto& ft : first_touch_)
    if (ft->line_shift() == line_shift) index = ft.get();
  if (index == nullptr) {
    first_touch_.push_back(std::unique_ptr<FirstTouchIndex>(
        new FirstTouchIndex(line_shift)));
    index = first_touch_.back().get();
  }
  const std::uint64_t end = entries_.size();
  if (index->covered_ < end) {
    index->bits_.resize(static_cast<std::size_t>((end + 63) / 64), 0);
    for (std::uint64_t i = index->covered_; i < end; ++i) {
      const std::uint64_t line = entries_[i].pc >> line_shift;
      if (index->seen_.insert(line).second)
        index->bits_[i >> 6] |= std::uint64_t{1} << (i & 63);
    }
    index->covered_ = end;
  }
  return *index;
}

}  // namespace cvmt
