#include "trace/trace_replay.hpp"

namespace cvmt {

void TraceReplay::ensure(std::uint64_t count) {
  while (entries_.size() < count) {
    gen_.advance();
    // Mirror of ThreadContext's live issue path: the patch list visits
    // exactly the memory and branch ops, in op order; everything else
    // about the packet is template-invariant.
    const Instruction& inst = gen_.current_instruction();
    Entry e;
    e.fp = &gen_.current_footprint();
    e.pc = gen_.current_pc();
    e.mem_begin = static_cast<std::uint32_t>(addrs_.size());
    e.op_count = static_cast<std::uint8_t>(inst.op_count());
    e.empty = inst.empty();
    e.taken = false;
    for (const std::uint8_t idx : gen_.current_patches()) {
      const Operation& op = inst.op(idx);
      if (is_memory(op.kind)) {
        addrs_.push_back(op.addr);
      } else if (op.taken) {
        e.taken = true;
      }
    }
    e.mem_count = static_cast<std::uint8_t>(addrs_.size() - e.mem_begin);
    entries_.push_back(e);
  }
}

}  // namespace cvmt
