// Resumable, deterministic dynamic instruction stream over a
// SyntheticProgram.
//
// One TraceGenerator is one software thread's execution: it walks loop
// entries (uniformly random loop, geometric trip count), emits the body
// templates with per-execution patches (memory addresses, mid-branch
// directions), and keeps its whole state in the object so the OS scheduler
// can deschedule/reschedule it at will. Copying the generator snapshots
// the execution — the simulator's determinism tests rely on this.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "isa/footprint.hpp"
#include "support/rng.hpp"
#include "trace/synthetic_program.hpp"

namespace cvmt {

class TraceGenerator {
 public:
  /// `stream_seed` decorrelates this execution from other instances of the
  /// same program (it also derives the address-space salt that keeps
  /// different software threads from aliasing in shared caches).
  TraceGenerator(std::shared_ptr<const SyntheticProgram> program,
                 std::uint64_t stream_seed);

  /// Emits the next dynamic VLIW instruction. The reference stays valid
  /// until the next call. Never ends (programs loop forever); the caller
  /// decides the instruction budget.
  const Instruction& next();

  /// Footprint of the most recently emitted instruction (cached template
  /// footprint; patches never change placement).
  [[nodiscard]] const Footprint& current_footprint() const;

  [[nodiscard]] std::uint64_t instructions_emitted() const {
    return emitted_;
  }
  [[nodiscard]] const SyntheticProgram& program() const { return *program_; }

  /// The address-space offset this execution adds to every PC and data
  /// address (models separate address spaces in shared caches). Tools can
  /// subtract it to map addresses back to the program's regions.
  [[nodiscard]] std::uint64_t address_salt() const { return address_salt_; }

 private:
  void enter_next_loop();

  std::shared_ptr<const SyntheticProgram> program_;
  Xoshiro256 rng_;
  std::uint64_t address_salt_ = 0;

  std::size_t loop_idx_ = 0;
  std::uint64_t trips_left_ = 0;
  std::size_t body_pos_ = 0;

  /// Per-loop persistent walk state (streams continue across re-entries).
  std::vector<std::uint64_t> hot_cursor_;
  std::vector<std::uint64_t> cold_cursor_;

  Instruction scratch_;
  Footprint scratch_fp_;
  std::uint64_t emitted_ = 0;
};

}  // namespace cvmt
