// Resumable, deterministic dynamic instruction stream over a
// SyntheticProgram.
//
// One TraceGenerator is one software thread's execution: it walks loop
// entries (uniformly random loop, geometric trip count), emits the body
// templates with per-execution patches (memory addresses, mid-branch
// directions), and keeps its whole state in the object so the OS scheduler
// can deschedule/reschedule it at will. Copying the generator snapshots
// the execution — the simulator's determinism tests rely on this.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "isa/footprint.hpp"
#include "support/rng.hpp"
#include "trace/synthetic_program.hpp"

namespace cvmt {

class TraceGenerator {
 public:
  /// `stream_seed` decorrelates this execution from other instances of the
  /// same program (it also derives the address-space salt that keeps
  /// different software threads from aliasing in shared caches).
  TraceGenerator(std::shared_ptr<const SyntheticProgram> program,
                 std::uint64_t stream_seed);

  /// Rewinds to the start of a fresh execution of `program` under
  /// `stream_seed`, bit-identical to constructing a new generator with the
  /// same arguments but reusing the per-loop cursor arrays. The session
  /// layer resets thread contexts across runs on this guarantee.
  void reset(std::shared_ptr<const SyntheticProgram> program,
             std::uint64_t stream_seed);

  /// Emits the next dynamic VLIW instruction. The reference stays valid
  /// until the next call. Never ends (programs loop forever); the caller
  /// decides the instruction budget.
  const Instruction& next();

  /// Hot-path variant of next(): advances the stream but materialises a
  /// patched copy only when the instruction has memory/branch ops. Read
  /// the result via current_instruction()/current_pc()/...; note that a
  /// patch-free current_instruction() aliases the program template, whose
  /// pc is unsalted — use current_pc() for the fetch address.
  void advance();

  /// The instruction advance() emitted (template or patched scratch).
  [[nodiscard]] const Instruction& current_instruction() const {
    return cur_is_scratch_ ? scratch_ : *cur_tmpl_;
  }
  /// Salted PC of the current instruction.
  [[nodiscard]] std::uint64_t current_pc() const { return cur_pc_; }

  /// Footprint of the most recently emitted instruction (cached template
  /// footprint; patches never change placement). Points into the shared
  /// immutable program — stable until the program itself goes away.
  [[nodiscard]] const Footprint& current_footprint() const;

  /// Patch list of the most recently emitted instruction: indices of its
  /// memory and branch operations, in op order. Lets the issue path visit
  /// only the timing-relevant ops. Same lifetime as current_footprint().
  [[nodiscard]] const SyntheticProgram::PatchList& current_patches() const {
    return *cur_patches_;
  }

  [[nodiscard]] std::uint64_t instructions_emitted() const {
    return emitted_;
  }
  [[nodiscard]] const SyntheticProgram& program() const { return *program_; }

  /// The address-space offset this execution adds to every PC and data
  /// address (models separate address spaces in shared caches). Tools can
  /// subtract it to map addresses back to the program's regions.
  [[nodiscard]] std::uint64_t address_salt() const { return address_salt_; }

  /// The salt a stream started with `stream_seed` would use, without
  /// constructing a generator. Static analyses (the batch engine's
  /// structurally-eviction-free ICache detection) enumerate a thread's
  /// fetch lines as {template pc + salt}; this keeps their salt derivation
  /// and start_stream()'s one definition.
  [[nodiscard]] static std::uint64_t salt_for_seed(std::uint64_t stream_seed);

 private:
  void enter_next_loop();
  /// Shared tail of construction and reset(): seeds the RNG and salt,
  /// rewinds every cursor, and enters the first loop.
  void start_stream(std::uint64_t stream_seed);

  std::shared_ptr<const SyntheticProgram> program_;
  Xoshiro256 rng_;
  std::uint64_t address_salt_ = 0;

  std::size_t loop_idx_ = 0;
  std::uint64_t trips_left_ = 0;
  std::size_t body_pos_ = 0;

  /// Per-loop persistent walk state (streams continue across re-entries).
  /// The hot cursor is kept already reduced modulo the loop's hot window
  /// (with the stride pre-reduced too), so the per-access address needs a
  /// compare-subtract instead of a 64-bit modulo.
  std::vector<std::uint64_t> hot_cursor_;
  std::vector<std::uint64_t> hot_stride_mod_;
  std::vector<std::uint64_t> cold_cursor_;

  Instruction scratch_;
  /// Cached views of the current instruction. The template, footprint and
  /// patch-list pointers reach into program_ (immutable, shared), so
  /// generator copies — snapshots — keep them valid; whether the emitted
  /// instruction lives in scratch_ is a flag rather than a self-pointer
  /// for the same reason.
  const Footprint* cur_fp_ = nullptr;
  const SyntheticProgram::PatchList* cur_patches_ = nullptr;
  const Instruction* cur_tmpl_ = nullptr;
  bool cur_is_scratch_ = false;
  std::uint64_t cur_pc_ = 0;
  std::uint64_t emitted_ = 0;
};

}  // namespace cvmt
