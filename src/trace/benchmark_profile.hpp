// Statistical benchmark profiles — the substitute for the VEX compiler and
// the MediaBench / SPECint2000 binaries (DESIGN.md §2, substitution 1).
//
// A profile captures everything the merging schemes are sensitive to:
// operations per instruction (horizontal density), scheduled empty
// instructions (vertical waste), fixed-slot pressure (memory / multiply /
// branch mix), the cluster footprint and its drift across loops, and the
// cache behaviour. The two Table 1 targets (IPCr with real memory and IPCp
// with perfect memory) calibrate the bubble count and DCache miss mix
// analytically; tests/trace_calibration_test.cpp asserts the simulated
// single-thread IPCs land on the targets.
#pragma once

#include <cstdint>
#include <string>

namespace cvmt {

/// Table 1 classification by IPCp.
enum class IlpDegree : std::uint8_t { kLow, kMedium, kHigh };

[[nodiscard]] constexpr char to_char(IlpDegree d) {
  switch (d) {
    case IlpDegree::kLow: return 'L';
    case IlpDegree::kMedium: return 'M';
    case IlpDegree::kHigh: return 'H';
  }
  return '?';
}

/// Shape parameters of one synthetic benchmark.
struct BenchmarkProfile {
  std::string name;
  IlpDegree ilp = IlpDegree::kLow;

  /// Table 1 reference points (operations per cycle).
  double target_ipc_real = 1.0;
  double target_ipc_perfect = 1.0;

  // --- Program shape -------------------------------------------------
  int num_loops = 12;            ///< distinct loop bodies in the program
  double mean_body_instrs = 12;  ///< non-bubble instructions per body
  double mean_trip_count = 48;   ///< iterations per loop entry

  // --- Instruction composition ---------------------------------------
  double mean_ops_per_instr = 2.0;  ///< of non-bubble instructions
  double mem_op_frac = 0.25;        ///< fraction of ops touching memory
  double store_frac = 0.3;          ///< of memory ops, fraction stores
  double mul_op_frac = 0.05;        ///< fraction of ops that multiply
  double mid_branch_frac = 0.08;    ///< instrs with a non-loop branch
  double mid_branch_taken = 0.25;   ///< taken probability of those

  // --- Cluster placement ---------------------------------------------
  /// Average operations packed per cluster before spilling to the next one
  /// (controls how many clusters an instruction touches; lower = wider
  /// footprint = harder for CSMT).
  double ops_per_cluster_target = 3.0;

  // --- Memory behaviour ----------------------------------------------
  std::uint64_t hot_bytes = 16 * 1024;  ///< cache-resident data per thread
  std::uint64_t hot_stride = 8;         ///< hot-region walk stride
  /// Miss penalty assumed by the IPCr calibration (must match the cache
  /// config used in experiments).
  int assumed_miss_penalty = 20;
  /// Code bytes occupied by one VLIW instruction (PC layout / ICache).
  std::uint64_t code_bytes_per_instr = 32;

  /// Seed decorrelating this benchmark's generated program from others.
  std::uint64_t seed = 1;

  /// Sanity checks (fractions in range, targets consistent).
  void validate() const;
};

}  // namespace cvmt
