// The paper's benchmark set (Table 1) and workload mixes (Table 2).
//
// Profile parameters are chosen so the synthetic programs land on the
// paper's IPCr/IPCp targets on the 4x4 VEX machine, with op mixes and
// working sets qualitatively matching each application's character
// (mcf pointer-chasing and memory-bound, colorspace wide and streaming,
// gsmencode fully cache-resident, ...).
#pragma once

#include <array>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "trace/synthetic_program.hpp"

namespace cvmt {

/// The 12 benchmark profiles in Table 1 order.
[[nodiscard]] const std::vector<BenchmarkProfile>& table1_profiles();

/// Lookup by benchmark name; throws CheckError if unknown.
[[nodiscard]] const BenchmarkProfile& profile_by_name(std::string_view name);

/// One multiprogrammed workload (row of Table 2).
struct Workload {
  std::string ilp_combo;                  ///< e.g. "LLHH"
  std::array<std::string, 4> benchmarks;  ///< thread 0..3
};

/// The 9 workload configurations in Table 2 order.
[[nodiscard]] const std::vector<Workload>& table2_workloads();

/// Builds and shares SyntheticPrograms for one machine configuration.
/// Lazily constructs on first use. Thread-safe: concurrent get()/lookup()
/// calls are serialised by an internal mutex, and a program is built at
/// most once (concurrent first requests for one name block on the single
/// build). For machine-keyed sharing across libraries and for non-Table-1
/// profiles, prefer the session layer's ArtifactCache (sim/session.hpp).
class ProgramLibrary {
 public:
  explicit ProgramLibrary(MachineConfig machine);

  /// Returns the (shared, immutable) program for `name`, building it on
  /// first use. Safe to call concurrently.
  std::shared_ptr<const SyntheticProgram> get(std::string_view name);

  /// Lookup of an already-built program; throws CheckError if it was
  /// never built. Safe to call concurrently.
  [[nodiscard]] std::shared_ptr<const SyntheticProgram> lookup(
      std::string_view name) const;

  /// Pre-builds every Table 1 program (optional warm-up; concurrent
  /// get() no longer requires it).
  void build_all();

  [[nodiscard]] const MachineConfig& machine() const { return machine_; }

 private:
  MachineConfig machine_;
  /// Guards cache_. Programs themselves are immutable once built.
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<const SyntheticProgram>,
           std::less<>>
      cache_;
};

}  // namespace cvmt
