#include "trace/benchmark_suite.hpp"

#include "support/check.hpp"

namespace cvmt {
namespace {

/// Builds one profile row. Targets are the paper's Table 1 columns; the
/// remaining parameters shape the op mix and memory behaviour.
BenchmarkProfile make_profile(std::string name, IlpDegree ilp, double ipc_r,
                              double ipc_p, double mean_ops, double mem_frac,
                              double mul_frac, double body, double hot_kb,
                              std::uint64_t seed) {
  BenchmarkProfile p;
  p.name = std::move(name);
  p.ilp = ilp;
  p.target_ipc_real = ipc_r;
  p.target_ipc_perfect = ipc_p;
  p.mean_ops_per_instr = mean_ops;
  p.mem_op_frac = mem_frac;
  p.mul_op_frac = mul_frac;
  p.mean_body_instrs = body;
  p.hot_bytes = static_cast<std::uint64_t>(hot_kb * 1024.0);
  p.seed = seed;
  return p;
}

std::vector<BenchmarkProfile> build_table1() {
  using enum IlpDegree;
  std::vector<BenchmarkProfile> t;
  //                    name          ILP  IPCr  IPCp  ops  mem   mul   body hotKB seed
  t.push_back(make_profile("mcf",        kLow,  0.96, 1.34,  2.0, 0.40, 0.01, 10, 24, 101));
  t.push_back(make_profile("bzip2",      kLow,  0.81, 0.83,  1.5, 0.30, 0.01, 14, 16, 102));
  t.push_back(make_profile("blowfish",   kLow,  1.11, 1.47,  2.2, 0.25, 0.02, 12, 12, 103));
  t.push_back(make_profile("gsmencode",  kLow,  1.07, 1.07,  1.8, 0.20, 0.08, 12,  8, 104));
  t.push_back(make_profile("g721encode", kMedium, 1.75, 1.76, 2.6, 0.22, 0.06, 14,  8, 105));
  t.push_back(make_profile("g721decode", kMedium, 1.75, 1.76, 2.6, 0.22, 0.06, 14,  8, 106));
  t.push_back(make_profile("cjpeg",      kMedium, 1.12, 1.66, 2.4, 0.28, 0.10, 14, 20, 107));
  t.push_back(make_profile("djpeg",      kMedium, 1.76, 1.77, 2.7, 0.26, 0.10, 14, 16, 108));
  t.push_back(make_profile("imgpipe",    kHigh, 3.81, 4.05,  5.5, 0.28, 0.08, 16, 24, 109));
  t.push_back(make_profile("x264",       kHigh, 3.89, 4.04,  5.6, 0.25, 0.10, 18, 24, 110));
  t.push_back(make_profile("idct",       kHigh, 4.79, 5.27,  7.0, 0.22, 0.14, 14, 12, 111));
  t.push_back(make_profile("colorspace", kHigh, 5.47, 8.88, 11.0, 0.30, 0.12, 24, 20, 112));

  // Control-heavy applications branch more; streaming kernels barely.
  t[0].mid_branch_frac = 0.12;  // mcf
  t[1].mid_branch_frac = 0.15;  // bzip2
  t[11].mid_branch_frac = 0.02;  // colorspace
  t[11].mean_trip_count = 96;    // long pixel loops

  // Cluster spread: the trace scheduler packs narrow (low/medium-ILP)
  // code into its home cluster but spreads wide code across all clusters
  // to expose ILP — which is exactly what starves CSMT on high-ILP
  // threads (Fig 6's LLHH spike). Placement never changes single-thread
  // timing, only merge opportunity; these three values were calibrated
  // against Fig 6's average and per-workload profile.
  for (auto& p : t) {
    switch (p.ilp) {
      case IlpDegree::kLow: p.ops_per_cluster_target = 3.0; break;
      case IlpDegree::kMedium: p.ops_per_cluster_target = 3.0; break;
      case IlpDegree::kHigh: p.ops_per_cluster_target = 2.0; break;
    }
  }
  for (auto& p : t) p.validate();
  return t;
}

std::vector<Workload> build_table2() {
  return {
      {"LLLL", {"mcf", "bzip2", "blowfish", "gsmencode"}},
      {"LMMH", {"bzip2", "cjpeg", "djpeg", "imgpipe"}},
      {"MMMM", {"g721encode", "g721decode", "cjpeg", "djpeg"}},
      {"LLMM", {"gsmencode", "blowfish", "g721encode", "djpeg"}},
      {"LLMH", {"mcf", "blowfish", "cjpeg", "x264"}},
      {"LLHH", {"mcf", "blowfish", "x264", "idct"}},
      {"LMHH", {"gsmencode", "g721encode", "imgpipe", "colorspace"}},
      {"MMHH", {"djpeg", "g721decode", "idct", "colorspace"}},
      {"HHHH", {"x264", "idct", "imgpipe", "colorspace"}},
  };
}

}  // namespace

const std::vector<BenchmarkProfile>& table1_profiles() {
  static const std::vector<BenchmarkProfile> kTable = build_table1();
  return kTable;
}

const BenchmarkProfile& profile_by_name(std::string_view name) {
  for (const BenchmarkProfile& p : table1_profiles())
    if (p.name == name) return p;
  CVMT_CHECK_MSG(false, "unknown benchmark: " + std::string(name));
  __builtin_unreachable();
}

const std::vector<Workload>& table2_workloads() {
  static const std::vector<Workload> kTable = build_table2();
  return kTable;
}

ProgramLibrary::ProgramLibrary(MachineConfig machine) : machine_(machine) {
  machine_.validate();
}

std::shared_ptr<const SyntheticProgram> ProgramLibrary::get(
    std::string_view name) {
  // The (rare) build happens under the lock: a concurrent second request
  // for the same name blocks until the first finishes, then hits.
  std::lock_guard<std::mutex> lock(mu_);
  if (auto it = cache_.find(name); it != cache_.end()) return it->second;
  auto program = std::make_shared<const SyntheticProgram>(
      profile_by_name(name), machine_);
  cache_.emplace(std::string(name), program);
  return program;
}

std::shared_ptr<const SyntheticProgram> ProgramLibrary::lookup(
    std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = cache_.find(name);
  CVMT_CHECK_MSG(it != cache_.end(),
                 "program not built: " + std::string(name));
  return it->second;
}

void ProgramLibrary::build_all() {
  for (const BenchmarkProfile& p : table1_profiles()) get(p.name);
}

}  // namespace cvmt
