#include "trace/vex_asm.hpp"

#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "support/string_util.hpp"

namespace cvmt {
namespace {

std::string hex(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "0x%" PRIx64, v);
  return buf;
}

/// Strict numeric field parsing. The old bare strtoull/strtod calls
/// passed a null end pointer, so any garbage field silently parsed as 0
/// (and "-48" wrapped modulo 2^64); every number in a program file now
/// validates the full token and fails with the line number. Base 0: code
/// and hot addresses are written 0x-prefixed.
std::uint64_t parse_u64_or_die(std::string_view tok, int line_no,
                               std::string_view what) {
  std::uint64_t v = 0;
  CVMT_CHECK_MSG(parse_u64_token(tok, v, 0),
                 "line " + std::to_string(line_no) + ": " +
                     std::string(what) + " is not an unsigned number: '" +
                     std::string(tok) + "'");
  return v;
}

double parse_double_or_die(std::string_view tok, int line_no,
                           std::string_view what) {
  double v = 0.0;
  CVMT_CHECK_MSG(parse_double_token(tok, v),
                 "line " + std::to_string(line_no) + ": " +
                     std::string(what) +
                     " is not a non-negative number: '" +
                     std::string(tok) + "'");
  return v;
}

OpKind kind_from_token(std::string_view tok, int line_no) {
  if (tok == "alu") return OpKind::kAlu;
  if (tok == "mpy") return OpKind::kMul;
  if (tok == "ld") return OpKind::kLoad;
  if (tok == "st") return OpKind::kStore;
  if (tok == "br") return OpKind::kBranch;
  CVMT_CHECK_MSG(false, "line " + std::to_string(line_no) +
                            ": unknown op kind '" + std::string(tok) + "'");
  __builtin_unreachable();
}

/// Minimal tokenizer state over one line.
class LineParser {
 public:
  LineParser(std::string_view line, int line_no)
      : line_(line), line_no_(line_no) {}

  /// key=value field, e.g. trips=48 or hot=0x20001040+4096.
  [[nodiscard]] std::string field(std::string_view key) {
    const std::string pat = std::string(key) + "=";
    const std::size_t pos = line_.find(pat);
    CVMT_CHECK_MSG(pos != std::string_view::npos,
                   "line " + std::to_string(line_no_) + ": missing '" +
                       std::string(key) + "='");
    std::size_t end = pos + pat.size();
    while (end < line_.size() && line_[end] != ' ') ++end;
    return std::string(line_.substr(pos + pat.size(),
                                    end - pos - pat.size()));
  }

  [[nodiscard]] std::uint64_t field_u64(std::string_view key) {
    return parse_u64_or_die(field(key), line_no_,
                            std::string(key) + "=");
  }
  [[nodiscard]] double field_double(std::string_view key) {
    return parse_double_or_die(field(key), line_no_,
                               std::string(key) + "=");
  }

 private:
  std::string_view line_;
  int line_no_;
};

Instruction parse_instruction(std::string_view body, int line_no) {
  Instruction instr;
  for (std::string_view part : split(body, ';')) {
    part = trim(part);
    if (part.empty()) continue;
    // "c<cluster>.<slot> <kind>"
    CVMT_CHECK_MSG(part.size() >= 5 && part[0] == 'c',
                   "line " + std::to_string(line_no) +
                       ": malformed operation '" + std::string(part) + "'");
    const std::size_t dot = part.find('.');
    const std::size_t space = part.find(' ', dot);
    CVMT_CHECK_MSG(dot != std::string_view::npos &&
                       space != std::string_view::npos,
                   "line " + std::to_string(line_no) +
                       ": malformed operation '" + std::string(part) + "'");
    Operation op;
    std::uint64_t cluster = 0;
    std::uint64_t slot = 0;
    CVMT_CHECK_MSG(
        parse_u64_token(part.substr(1, dot - 1), cluster, 10) &&
            parse_u64_token(part.substr(dot + 1, space - dot - 1), slot,
                            10) &&
            cluster <= 0xff && slot <= 0xff,
        "line " + std::to_string(line_no) + ": malformed operation '" +
            std::string(part) + "'");
    op.cluster = static_cast<std::uint8_t>(cluster);
    op.slot = static_cast<std::uint8_t>(slot);
    op.kind = kind_from_token(trim(part.substr(space + 1)), line_no);
    instr.add(op);
  }
  return instr;
}

/// The `.machine` directive's issue= field: the flat width, or a
/// comma-separated per-cluster list for heterogeneous machines
/// (e.g. "4,4,2,1").
std::string issue_field_of(const MachineConfig& m) {
  if (!m.heterogeneous) return std::to_string(m.issue_per_cluster);
  std::string out;
  for (int c = 0; c < m.num_clusters; ++c) {
    if (c) out += ',';
    out += std::to_string(m.cluster_issue(c));
  }
  return out;
}

}  // namespace

std::string dump_program(const SyntheticProgram& program) {
  const BenchmarkProfile& p = program.profile();
  const MachineConfig& m = program.machine();
  std::ostringstream os;
  os << ".program " << p.name << "\n";
  os << ".machine clusters=" << m.num_clusters << " issue="
     << issue_field_of(m) << "\n";
  os << ".stride " << p.hot_stride << "\n";
  os << ".codebytes " << p.code_bytes_per_instr << "\n";
  os << ".midtaken " << format_fixed(p.mid_branch_taken, 4) << "\n";
  for (const auto& loop : program.loops()) {
    os << ".loop trips=" << format_fixed(loop.mean_trips, 3)
       << " miss=" << format_fixed(loop.miss_frac, 6)
       << " code=" << hex(loop.code_base) << " hot=" << hex(loop.hot_base)
       << "+" << loop.hot_window << " cold=" << hex(loop.cold_base) << "\n";
    for (const Instruction& instr : loop.body) {
      os << "{ ";
      for (std::size_t i = 0; i < instr.op_count(); ++i) {
        if (i) os << " ; ";
        const Operation& op = instr.op(i);
        os << 'c' << static_cast<int>(op.cluster) << '.'
           << static_cast<int>(op.slot) << ' ' << to_string(op.kind);
      }
      os << (instr.empty() ? "}" : " }") << "\n";
    }
    os << ".endloop\n";
  }
  return os.str();
}

std::shared_ptr<const SyntheticProgram> parse_program(
    std::string_view text, const MachineConfig& machine) {
  BenchmarkProfile profile;
  profile.name = "(unnamed)";
  profile.target_ipc_real = 1.0;
  profile.target_ipc_perfect = 1.0;

  std::vector<SyntheticProgram::Loop> loops;
  SyntheticProgram::Loop current;
  bool in_loop = false;
  bool machine_seen = false;
  std::uint64_t next_pc = 0;

  int line_no = 0;
  for (std::string raw : split(text, '\n')) {
    ++line_no;
    if (const std::size_t hash = raw.find('#'); hash != std::string::npos)
      raw.resize(hash);
    const std::string_view line = trim(raw);
    if (line.empty()) continue;
    LineParser lp(line, line_no);

    if (line.rfind(".program", 0) == 0) {
      profile.name = std::string(trim(line.substr(8)));
    } else if (line.rfind(".machine", 0) == 0) {
      CVMT_CHECK_MSG(static_cast<int>(lp.field_u64("clusters")) ==
                             machine.num_clusters &&
                         lp.field("issue") == issue_field_of(machine),
                     "line " + std::to_string(line_no) +
                         ": .machine does not match the target machine");
      machine_seen = true;
    } else if (line.rfind(".stride", 0) == 0) {
      profile.hot_stride =
          parse_u64_or_die(trim(line.substr(7)), line_no, ".stride");
    } else if (line.rfind(".codebytes", 0) == 0) {
      profile.code_bytes_per_instr =
          parse_u64_or_die(trim(line.substr(10)), line_no, ".codebytes");
    } else if (line.rfind(".midtaken", 0) == 0) {
      profile.mid_branch_taken =
          parse_double_or_die(trim(line.substr(9)), line_no, ".midtaken");
    } else if (line.rfind(".loop", 0) == 0) {
      CVMT_CHECK_MSG(!in_loop, "line " + std::to_string(line_no) +
                                   ": nested .loop");
      current = SyntheticProgram::Loop{};
      current.mean_trips = lp.field_double("trips");
      current.miss_frac = lp.field_double("miss");
      current.code_base = lp.field_u64("code");
      const std::string hot = lp.field("hot");
      const std::size_t plus = hot.find('+');
      CVMT_CHECK_MSG(plus != std::string::npos,
                     "line " + std::to_string(line_no) +
                         ": hot= needs base+window");
      current.hot_base = parse_u64_or_die(
          std::string_view(hot).substr(0, plus), line_no, "hot= base");
      current.hot_window = parse_u64_or_die(
          std::string_view(hot).substr(plus + 1), line_no, "hot= window");
      current.cold_base = lp.field_u64("cold");
      next_pc = current.code_base;
      in_loop = true;
    } else if (line == ".endloop") {
      CVMT_CHECK_MSG(in_loop, "line " + std::to_string(line_no) +
                                  ": .endloop outside a loop");
      loops.push_back(std::move(current));
      in_loop = false;
    } else if (line.front() == '{') {
      CVMT_CHECK_MSG(in_loop, "line " + std::to_string(line_no) +
                                  ": instruction outside a loop");
      const std::size_t close = line.rfind('}');
      CVMT_CHECK_MSG(close != std::string_view::npos,
                     "line " + std::to_string(line_no) + ": missing '}'");
      Instruction instr =
          parse_instruction(line.substr(1, close - 1), line_no);
      instr.set_pc(next_pc);
      next_pc += profile.code_bytes_per_instr;
      current.body.push_back(std::move(instr));
    } else {
      CVMT_CHECK_MSG(false, "line " + std::to_string(line_no) +
                                ": unrecognised directive '" +
                                std::string(line) + "'");
    }
  }
  CVMT_CHECK_MSG(!in_loop, "unterminated .loop at end of input");
  CVMT_CHECK_MSG(machine_seen, "missing .machine directive");
  profile.num_loops = static_cast<int>(loops.size());
  return std::make_shared<const SyntheticProgram>(profile, machine,
                                                  std::move(loops));
}

}  // namespace cvmt
