// Recorded dynamic instruction stream: generate once, replay many times.
//
// A thread's trace is fully determined by (program, stream_seed) — the
// merge scheme, memory system and OS policy only decide *when* each
// instruction issues, never *what* the stream contains. Dense sweeps
// therefore re-generate the same streams over and over: the 16-scheme x
// 9-workload grid draws every workload's traces 16 times, and a fuzz
// case's oracle configurations re-draw identical streams per
// configuration. TraceReplay records a stream's timing-relevant content
// once — footprint, salted PC, patched memory addresses, taken-branch
// flag, op/bubble counts per instruction — by driving the production
// TraceGenerator, so the recording is identical to the live stream by
// construction. ThreadContext then replays from the arrays: no RNG
// draws, no cursor arithmetic, no template patching on the batch hot
// path. Cache accesses are NOT recorded — hits and misses depend on the
// cross-thread interleaving, so the replaying context still performs
// every fetch and data access live, in simulated order.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "trace/trace_generator.hpp"

namespace cvmt {

/// Per-entry first-touch flags of one recorded stream at one cache-line
/// granularity: bit i is set iff entry i's fetch line does not appear in
/// entries [0, i). When the batch engine proves a workload's shared ICache
/// structurally eviction-free, "first touch of the line" IS "ICache miss"
/// — a pure property of the recording, independent of the cross-thread
/// interleaving — so the fetch path reads one bit here instead of walking
/// the cache. Owned by a TraceReplay (stable address; the bit array may
/// grow in place as the recording extends, existing bits never change).
class FirstTouchIndex {
 public:
  /// True iff recorded entry `i` is its thread's first fetch of its line.
  [[nodiscard]] bool miss(std::uint64_t i) const {
    return ((bits_[i >> 6] >> (i & 63)) & 1u) != 0;
  }
  [[nodiscard]] std::uint32_t line_shift() const { return line_shift_; }
  /// Entries covered so far (flags valid for i < covered()).
  [[nodiscard]] std::uint64_t covered() const { return covered_; }
  [[nodiscard]] std::size_t bytes() const {
    return bits_.capacity() * sizeof(std::uint64_t) +
           seen_.size() * 3 * sizeof(std::uint64_t);  // approx. node cost
  }

 private:
  friend class TraceReplay;
  explicit FirstTouchIndex(std::uint32_t line_shift)
      : line_shift_(line_shift) {}

  std::uint32_t line_shift_;
  std::vector<std::uint64_t> bits_;
  std::unordered_set<std::uint64_t> seen_;  ///< lines touched in [0, covered_)
  std::uint64_t covered_ = 0;
};

/// One software thread's recorded stream. Grows lazily via ensure(); the
/// embedded generator keeps its position so extension is incremental.
class TraceReplay {
 public:
  TraceReplay(std::shared_ptr<const SyntheticProgram> program,
              std::uint64_t stream_seed)
      : gen_(std::move(program), stream_seed) {}

  /// Everything the issue path needs from one dynamic instruction. The
  /// footprint pointer reaches into the shared immutable program; memory
  /// addresses live in the recording's own pool (`mem_begin`/`mem_count`).
  struct Entry {
    const Footprint* fp;
    std::uint64_t pc;          ///< salted fetch address
    std::uint32_t mem_begin;   ///< first address in the shared pool
    std::uint8_t mem_count;    ///< patched memory ops in this packet
    std::uint8_t op_count;     ///< useful ops (template-invariant)
    bool empty;                ///< bubble packet
    bool taken;                ///< any patched branch taken
  };

  /// Extends the recording to at least `count` instructions.
  void ensure(std::uint64_t count);

  /// First-touch flags of this recording at line granularity
  /// `line_shift`, extended to cover at least `count` entries (the
  /// recording itself is extended first if needed). The returned object's
  /// address is stable for the TraceReplay's lifetime; a later wider call
  /// only appends bits, so concurrent-in-time readers of lower indices
  /// stay valid. One index per distinct line_shift is kept.
  const FirstTouchIndex& first_touch(std::uint32_t line_shift,
                                     std::uint64_t count);

  [[nodiscard]] const Entry& entry(std::uint64_t i) const {
    return entries_[i];
  }
  [[nodiscard]] const std::uint64_t* mem_addrs(const Entry& e) const {
    return addrs_.data() + e.mem_begin;
  }
  [[nodiscard]] std::uint64_t recorded() const { return entries_.size(); }
  /// Approximate heap footprint, for the batch engine's cache budget.
  [[nodiscard]] std::size_t bytes() const {
    std::size_t total = entries_.capacity() * sizeof(Entry) +
                        addrs_.capacity() * sizeof(std::uint64_t);
    for (const auto& ft : first_touch_) total += ft->bytes();
    return total;
  }

 private:
  TraceGenerator gen_;
  std::vector<Entry> entries_;
  std::vector<std::uint64_t> addrs_;
  /// unique_ptr: ThreadContext and the fused kernel hold FirstTouchIndex
  /// pointers across jobs, so the objects must not move when this vector
  /// grows a new granularity.
  std::vector<std::unique_ptr<FirstTouchIndex>> first_touch_;
};

}  // namespace cvmt
