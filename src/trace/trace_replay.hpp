// Recorded dynamic instruction stream: generate once, replay many times.
//
// A thread's trace is fully determined by (program, stream_seed) — the
// merge scheme, memory system and OS policy only decide *when* each
// instruction issues, never *what* the stream contains. Dense sweeps
// therefore re-generate the same streams over and over: the 16-scheme x
// 9-workload grid draws every workload's traces 16 times, and a fuzz
// case's oracle configurations re-draw identical streams per
// configuration. TraceReplay records a stream's timing-relevant content
// once — footprint, salted PC, patched memory addresses, taken-branch
// flag, op/bubble counts per instruction — by driving the production
// TraceGenerator, so the recording is identical to the live stream by
// construction. ThreadContext then replays from the arrays: no RNG
// draws, no cursor arithmetic, no template patching on the batch hot
// path. Cache accesses are NOT recorded — hits and misses depend on the
// cross-thread interleaving, so the replaying context still performs
// every fetch and data access live, in simulated order.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "trace/trace_generator.hpp"

namespace cvmt {

/// One software thread's recorded stream. Grows lazily via ensure(); the
/// embedded generator keeps its position so extension is incremental.
class TraceReplay {
 public:
  TraceReplay(std::shared_ptr<const SyntheticProgram> program,
              std::uint64_t stream_seed)
      : gen_(std::move(program), stream_seed) {}

  /// Everything the issue path needs from one dynamic instruction. The
  /// footprint pointer reaches into the shared immutable program; memory
  /// addresses live in the recording's own pool (`mem_begin`/`mem_count`).
  struct Entry {
    const Footprint* fp;
    std::uint64_t pc;          ///< salted fetch address
    std::uint32_t mem_begin;   ///< first address in the shared pool
    std::uint8_t mem_count;    ///< patched memory ops in this packet
    std::uint8_t op_count;     ///< useful ops (template-invariant)
    bool empty;                ///< bubble packet
    bool taken;                ///< any patched branch taken
  };

  /// Extends the recording to at least `count` instructions.
  void ensure(std::uint64_t count);

  [[nodiscard]] const Entry& entry(std::uint64_t i) const {
    return entries_[i];
  }
  [[nodiscard]] const std::uint64_t* mem_addrs(const Entry& e) const {
    return addrs_.data() + e.mem_begin;
  }
  [[nodiscard]] std::uint64_t recorded() const { return entries_.size(); }
  /// Approximate heap footprint, for the batch engine's cache budget.
  [[nodiscard]] std::size_t bytes() const {
    return entries_.capacity() * sizeof(Entry) +
           addrs_.capacity() * sizeof(std::uint64_t);
  }

 private:
  TraceGenerator gen_;
  std::vector<Entry> entries_;
  std::vector<std::uint64_t> addrs_;
};

}  // namespace cvmt
