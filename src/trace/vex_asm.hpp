// VEX-style textual program format.
//
// The real system works from VEX compiler listings; this module provides
// the equivalent artifact for the synthetic substrate: a human-readable
// dump of a program's scheduled loop bodies that can be edited by hand and
// loaded back. Round-trip is exact (dump(parse(dump(p))) == dump(p)), and
// a parsed program simulates identically to its source.
//
// Format (one instruction per line, ';' separates operations, '#' starts
// a comment):
//
//   .program mcf
//   .machine clusters=4 issue=4
//   .stride 8
//   .midtaken 0.25
//   .loop trips=48 miss=0.0312 code=0x10000 hot=0x20001040+4096
//         cold=0x40000000   (all on one line)
//   { c0.0 alu ; c0.2 ld }
//   { }                          # scheduled stall (bubble)
//   { c0.3 br }
//   .endloop
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "trace/synthetic_program.hpp"

namespace cvmt {

/// Renders `program` in the textual format above.
[[nodiscard]] std::string dump_program(const SyntheticProgram& program);

/// Parses a textual program. The `.machine` directive must match
/// `machine`. Throws CheckError with a line number on malformed input.
[[nodiscard]] std::shared_ptr<const SyntheticProgram> parse_program(
    std::string_view text, const MachineConfig& machine);

}  // namespace cvmt
