// The "compiled binary" of a synthetic benchmark: a pool of scheduled loop
// bodies with concrete operation placement, bubble (empty) instructions and
// address-stream descriptors. Deterministic given (profile, machine).
//
// Construction mirrors what the VEX compiler's trace scheduler produces:
//  * each loop body is a fixed sequence of VLIW instructions whose
//    operations are packed into a window of clusters starting at a
//    per-loop "home" cluster (Bottom-Up-Greedy keeps loops in few
//    clusters; different loops land in different homes, which is what
//    gives CSMT its disjoint-footprint opportunities);
//  * scheduled stalls appear as explicit empty instructions (vertical
//    waste), sized so the loop's perfect-memory IPC hits the Table 1
//    IPCp target;
//  * every loop ends in a (taken) backward branch;
//  * the fraction of memory operations routed to an always-miss streaming
//    region is solved from the IPCr target.
#pragma once

#include <memory>
#include <vector>

#include "isa/footprint.hpp"
#include "isa/instruction.hpp"
#include "isa/machine_config.hpp"
#include "trace/benchmark_profile.hpp"

namespace cvmt {

/// An immutable synthetic program. Share between generators/threads via
/// shared_ptr (it is read-only after construction).
class SyntheticProgram {
 public:
  /// Per body instruction: indices of the operations patched at emission
  /// time (memory ops get addresses, branches get directions), in op
  /// order. Precomputed so the emission and issue hot paths touch only
  /// these instead of scanning every operation.
  using PatchList = InlineVec<std::uint8_t, kMaxTotalOps>;

  /// One scheduled loop.
  struct Loop {
    std::vector<Instruction> body;      ///< templates; empty = bubble
    std::vector<Footprint> footprints;  ///< cached per body instruction
    std::vector<PatchList> patch_ops;   ///< cached per body instruction
    std::uint64_t code_base = 0;  ///< PC of body[0]
    std::uint64_t hot_base = 0;   ///< cache-resident data region base
    std::uint64_t hot_window = 0;
    std::uint64_t cold_base = 0;  ///< streaming always-miss region base
    double miss_frac = 0.0;  ///< P(memory op goes to the cold stream)
    double mean_trips = 1.0;
    int real_instrs = 0;  ///< non-bubble instruction count
    std::int64_t total_ops = 0;
    std::int64_t mem_ops = 0;
    /// Expected cycles per iteration under perfect memory: instructions +
    /// bubbles + branch squash penalties.
    double expected_cycles_perfect = 0.0;
  };

  SyntheticProgram(BenchmarkProfile profile, MachineConfig machine);

  /// Constructs directly from pre-built loops. Used by the VEX-asm loader
  /// (trace/vex_asm.hpp) and by tests that need hand-crafted programs.
  /// Derived per-loop fields (footprints, op totals, expected cycles) are
  /// recomputed from the bodies; caller-provided values are ignored.
  SyntheticProgram(BenchmarkProfile profile, MachineConfig machine,
                   std::vector<Loop> loops);

  [[nodiscard]] const BenchmarkProfile& profile() const { return profile_; }
  [[nodiscard]] const MachineConfig& machine() const { return machine_; }
  [[nodiscard]] const std::vector<Loop>& loops() const { return loops_; }

  /// Analytic single-thread IPC expectations implied by the built loops
  /// (trip-count weighted). Tests compare simulation output against these
  /// and against the Table 1 targets.
  [[nodiscard]] double expected_ipc_perfect() const;
  [[nodiscard]] double expected_ipc_real() const;

 private:
  BenchmarkProfile profile_;
  MachineConfig machine_;
  std::vector<Loop> loops_;
};

}  // namespace cvmt
