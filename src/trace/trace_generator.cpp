#include "trace/trace_generator.hpp"

namespace cvmt {
namespace {
/// Cold streams advance one line per access (guaranteed compulsory miss)
/// and wrap after 64MB — long evicted by then.
constexpr std::uint64_t kColdLineBytes = 64;
constexpr std::uint64_t kColdWrapBytes = 64ULL << 20;
}  // namespace

TraceGenerator::TraceGenerator(
    std::shared_ptr<const SyntheticProgram> program,
    std::uint64_t stream_seed)
    : program_(std::move(program)),
      rng_(SplitMix64(stream_seed ^ 0xabcdef12345ULL).next()) {
  CVMT_CHECK(program_ != nullptr);
  // 1MB-granular address-space salt: keeps threads disjoint in shared
  // caches while preserving intra-thread set behaviour.
  SplitMix64 sm(stream_seed);
  address_salt_ = (sm.next() % 2048) * 0x100000ULL;
  const std::size_t n = program_->loops().size();
  hot_cursor_.assign(n, 0);
  cold_cursor_.assign(n, 0);
  enter_next_loop();
}

void TraceGenerator::enter_next_loop() {
  const auto& loops = program_->loops();
  loop_idx_ = rng_.next_below(loops.size());
  trips_left_ = rng_.next_trip_count(loops[loop_idx_].mean_trips);
  body_pos_ = 0;
}

const Instruction& TraceGenerator::next() {
  const SyntheticProgram::Loop& loop = program_->loops()[loop_idx_];

  scratch_ = loop.body[body_pos_];
  scratch_fp_ = loop.footprints[body_pos_];
  scratch_.set_pc(scratch_.pc() + address_salt_);

  const bool is_last = body_pos_ + 1 == loop.body.size();
  for (std::size_t i = 0; i < scratch_.op_count(); ++i) {
    Operation& op = scratch_.op(i);
    if (is_memory(op.kind)) {
      if (rng_.next_bool(loop.miss_frac)) {
        std::uint64_t& cur = cold_cursor_[loop_idx_];
        op.addr = loop.cold_base + address_salt_ + cur;
        cur = (cur + kColdLineBytes) % kColdWrapBytes;
      } else {
        std::uint64_t& cur = hot_cursor_[loop_idx_];
        op.addr = loop.hot_base + address_salt_ +
                  (cur % loop.hot_window);
        cur += program_->profile().hot_stride;
      }
    } else if (op.kind == OpKind::kBranch) {
      // The loop-closing branch is always taken (back edge or exit jump);
      // mid-body branches resolve randomly.
      op.taken = is_last ||
                 rng_.next_bool(program_->profile().mid_branch_taken);
    }
  }

  ++emitted_;
  if (is_last) {
    body_pos_ = 0;
    if (--trips_left_ == 0) enter_next_loop();
  } else {
    ++body_pos_;
  }
  return scratch_;
}

const Footprint& TraceGenerator::current_footprint() const {
  return scratch_fp_;
}

}  // namespace cvmt
