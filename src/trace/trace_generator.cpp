#include "trace/trace_generator.hpp"

namespace cvmt {
namespace {
/// Cold streams advance one line per access (guaranteed compulsory miss)
/// and wrap after 64MB — long evicted by then.
constexpr std::uint64_t kColdLineBytes = 64;
constexpr std::uint64_t kColdWrapBytes = 64ULL << 20;
}  // namespace

TraceGenerator::TraceGenerator(
    std::shared_ptr<const SyntheticProgram> program,
    std::uint64_t stream_seed)
    : program_(std::move(program)),
      rng_(SplitMix64(stream_seed ^ 0xabcdef12345ULL).next()) {
  CVMT_CHECK(program_ != nullptr);
  start_stream(stream_seed);
}

void TraceGenerator::reset(std::shared_ptr<const SyntheticProgram> program,
                           std::uint64_t stream_seed) {
  CVMT_CHECK(program != nullptr);
  program_ = std::move(program);
  rng_ = Xoshiro256(SplitMix64(stream_seed ^ 0xabcdef12345ULL).next());
  start_stream(stream_seed);
}

std::uint64_t TraceGenerator::salt_for_seed(std::uint64_t stream_seed) {
  // 1MB-granular address-space salt: keeps threads disjoint in shared
  // caches while preserving intra-thread set behaviour.
  SplitMix64 sm(stream_seed);
  return (sm.next() % 2048) * 0x100000ULL;
}

void TraceGenerator::start_stream(std::uint64_t stream_seed) {
  address_salt_ = salt_for_seed(stream_seed);
  const std::size_t n = program_->loops().size();
  hot_cursor_.assign(n, 0);
  cold_cursor_.assign(n, 0);
  hot_stride_mod_.resize(n);
  for (std::size_t l = 0; l < n; ++l)
    hot_stride_mod_[l] =
        program_->profile().hot_stride % program_->loops()[l].hot_window;
  cur_fp_ = nullptr;
  cur_patches_ = nullptr;
  cur_tmpl_ = nullptr;
  cur_is_scratch_ = false;
  cur_pc_ = 0;
  emitted_ = 0;
  enter_next_loop();
}

void TraceGenerator::enter_next_loop() {
  const auto& loops = program_->loops();
  loop_idx_ = rng_.next_below(loops.size());
  trips_left_ = rng_.next_trip_count(loops[loop_idx_].mean_trips);
  body_pos_ = 0;
}

void TraceGenerator::advance() {
  const SyntheticProgram::Loop& loop = program_->loops()[loop_idx_];

  cur_tmpl_ = &loop.body[body_pos_];
  cur_fp_ = &loop.footprints[body_pos_];
  cur_patches_ = &loop.patch_ops[body_pos_];
  cur_pc_ = cur_tmpl_->pc() + address_salt_;
  cur_is_scratch_ = !cur_patches_->empty();

  const bool is_last = body_pos_ + 1 == loop.body.size();
  if (cur_is_scratch_) {
    // Only memory and branch ops need per-execution patching; the
    // precomputed patch list (op order preserved, so RNG draws are
    // reproducible) skips the rest — and a patch-free instruction skips
    // the copy altogether.
    scratch_ = *cur_tmpl_;
    scratch_.set_pc(cur_pc_);
    for (const std::uint8_t i : *cur_patches_) {
      Operation& op = scratch_.op(i);
      if (is_memory(op.kind)) {
        if (rng_.next_bool(loop.miss_frac)) {
          std::uint64_t& cur = cold_cursor_[loop_idx_];
          op.addr = loop.cold_base + address_salt_ + cur;
          cur = (cur + kColdLineBytes) % kColdWrapBytes;
        } else {
          // cur is maintained in [0, hot_window): same addresses as the
          // raw-cursor modulo, without the division.
          std::uint64_t& cur = hot_cursor_[loop_idx_];
          op.addr = loop.hot_base + address_salt_ + cur;
          cur += hot_stride_mod_[loop_idx_];
          if (cur >= loop.hot_window) cur -= loop.hot_window;
        }
      } else {
        // The loop-closing branch is always taken (back edge or exit
        // jump); mid-body branches resolve randomly.
        op.taken = is_last ||
                   rng_.next_bool(program_->profile().mid_branch_taken);
      }
    }
  }

  ++emitted_;
  if (is_last) {
    body_pos_ = 0;
    if (--trips_left_ == 0) enter_next_loop();
  } else {
    ++body_pos_;
  }
}

const Instruction& TraceGenerator::next() {
  advance();
  if (!cur_is_scratch_) {
    // Preserve next()'s contract: the returned instruction carries the
    // salted PC, so materialise the template into scratch.
    scratch_ = *cur_tmpl_;
    scratch_.set_pc(cur_pc_);
    cur_is_scratch_ = true;
  }
  return scratch_;
}

const Footprint& TraceGenerator::current_footprint() const {
  return *cur_fp_;
}

}  // namespace cvmt
