#include "trace/synthetic_program.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "support/rng.hpp"

namespace cvmt {
namespace {

/// Knuth Poisson sampler; fine for the small means used at build time.
int sample_poisson(Xoshiro256& rng, double mean) {
  const double limit = std::exp(-mean);
  double p = 1.0;
  int k = 0;
  do {
    ++k;
    p *= rng.next_double();
  } while (p > limit);
  return k - 1;
}

/// Draws the operation count of one instruction: Poisson around the mean,
/// clamped to [1, machine width].
int sample_op_count(Xoshiro256& rng, double mean, int max_ops) {
  const int k = sample_poisson(rng, mean);
  return std::clamp(k, 1, max_ops);
}

/// Places one operation into the instruction under construction. Clusters
/// are tried starting from `preferred`, walking the whole machine if
/// necessary. Returns false if no capable slot is free anywhere.
bool place_op(Instruction& instr, std::uint32_t occupied[kMaxClusters],
              OpKind kind, int preferred, const MachineConfig& machine) {
  for (int probe = 0; probe < machine.num_clusters; ++probe) {
    const int c = (preferred + probe) % machine.num_clusters;
    const std::uint32_t free_capable =
        machine.slots_for(kind, c) & ~occupied[c];
    if (free_capable == 0) continue;
    const int slot = std::countr_zero(free_capable);
    occupied[c] |= 1u << slot;
    Operation op;
    op.kind = kind;
    op.cluster = static_cast<std::uint8_t>(c);
    op.slot = static_cast<std::uint8_t>(slot);
    instr.add(op);
    return true;
  }
  return false;
}

/// Ops the trace generator must patch at emission: memory (address) and
/// branch (direction), in op order.
SyntheticProgram::PatchList patch_list_of(const Instruction& instr) {
  SyntheticProgram::PatchList patches;
  for (std::size_t i = 0; i < instr.op_count(); ++i) {
    const OpKind kind = instr.op(i).kind;
    if (is_memory(kind) || kind == OpKind::kBranch)
      patches.push_back(static_cast<std::uint8_t>(i));
  }
  return patches;
}

}  // namespace

SyntheticProgram::SyntheticProgram(BenchmarkProfile profile,
                                   MachineConfig machine)
    : profile_(std::move(profile)), machine_(machine) {
  profile_.validate();
  machine_.validate();
  const int m = machine_.num_clusters;

  loops_.resize(static_cast<std::size_t>(profile_.num_loops));
  for (int l = 0; l < profile_.num_loops; ++l) {
    Loop& loop = loops_[static_cast<std::size_t>(l)];
    const auto lu = static_cast<std::uint64_t>(l);
    Xoshiro256 rng(profile_.seed * std::uint64_t{0x9e3779b9} +
                   std::uint64_t{0x51} * (lu + 1));

    // --- Body size and home cluster ---------------------------------
    const double body_scale = 0.6 + 0.8 * rng.next_double();
    const int n_real = std::max(
        2, static_cast<int>(std::llround(profile_.mean_body_instrs *
                                         body_scale)));
    const int home_cluster = static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(m)));

    // --- Schedule the real instructions -----------------------------
    double expected_penalty = 0.0;
    for (int i = 0; i < n_real; ++i) {
      const bool is_last = i == n_real - 1;
      Instruction instr;
      std::uint32_t occupied[kMaxClusters] = {};
      int k = sample_op_count(rng, profile_.mean_ops_per_instr,
                              machine_.total_issue_width());

      // The instruction's cluster window: k ops packed at
      // ops_per_cluster_target density, anchored at the loop's home.
      const int window = std::clamp(
          static_cast<int>(std::ceil(static_cast<double>(k) /
                                     profile_.ops_per_cluster_target)),
          1, m);

      const bool mid_branch =
          !is_last && rng.next_bool(profile_.mid_branch_frac);
      if (is_last || mid_branch) {
        // Control flow lives on cluster 0, as in the Lx/ST200 family: the
        // branch unit of cluster 0 sequences the whole processor. This is
        // a real merge bottleneck — two threads' branch packets collide.
        place_op(instr, occupied, OpKind::kBranch, 0, machine_);
        --k;
        expected_penalty +=
            (is_last ? 1.0 : profile_.mid_branch_taken) *
            machine_.taken_branch_penalty;
      }
      for (int j = 0; j < k; ++j) {
        const int preferred = (home_cluster + j % window) % m;
        OpKind kind = OpKind::kAlu;
        const double dice = rng.next_double();
        if (dice < profile_.mem_op_frac)
          kind = rng.next_bool(profile_.store_frac) ? OpKind::kStore
                                                    : OpKind::kLoad;
        else if (dice < profile_.mem_op_frac + profile_.mul_op_frac)
          kind = OpKind::kMul;
        place_op(instr, occupied, kind, preferred, machine_);
      }
      loop.body.push_back(instr);
    }

    // --- Tally, then insert bubbles to hit the IPCp target ----------
    std::int64_t total_ops = 0;
    std::int64_t mem_ops = 0;
    for (const Instruction& instr : loop.body) {
      total_ops += static_cast<std::int64_t>(instr.op_count());
      for (const Operation& op : instr)
        if (is_memory(op.kind)) ++mem_ops;
    }
    const double ops = static_cast<double>(total_ops);
    const std::int64_t bubbles = std::max<std::int64_t>(
        0, std::llround(ops / profile_.target_ipc_perfect -
                        static_cast<double>(n_real) - expected_penalty));
    for (std::int64_t b = 0; b < bubbles; ++b) {
      // Insert before the final (branch) instruction.
      const auto pos = static_cast<std::ptrdiff_t>(
          rng.next_below(loop.body.size()));
      loop.body.insert(loop.body.begin() + pos, Instruction{});
    }

    // --- Assign PCs and cache the footprints -------------------------
    loop.code_base = std::uint64_t{0x10000} + lu * std::uint64_t{0x1000};
    CVMT_CHECK_MSG(loop.body.size() * profile_.code_bytes_per_instr <=
                       std::uint64_t{0x1000},
                   "loop body overflows its code region");
    for (std::size_t i = 0; i < loop.body.size(); ++i) {
      loop.body[i].set_pc(loop.code_base +
                          static_cast<std::uint64_t>(i) *
                              profile_.code_bytes_per_instr);
      loop.footprints.push_back(Footprint::of(loop.body[i], machine_));
      loop.patch_ops.push_back(patch_list_of(loop.body[i]));
    }

    // --- Timing bookkeeping and the IPCr miss mix ---------------------
    loop.real_instrs = n_real;
    loop.total_ops = total_ops;
    loop.mem_ops = mem_ops;
    loop.mean_trips = profile_.mean_trip_count;
    loop.expected_cycles_perfect =
        static_cast<double>(loop.body.size()) + expected_penalty;
    if (mem_ops > 0 && profile_.target_ipc_real <
                           profile_.target_ipc_perfect) {
      const double misses_needed =
          (ops / profile_.target_ipc_real - ops /
           profile_.target_ipc_perfect) /
          profile_.assumed_miss_penalty;
      loop.miss_frac = std::clamp(
          misses_needed / static_cast<double>(mem_ops), 0.0, 0.95);
    }

    // --- Data regions --------------------------------------------------
    loop.hot_window = std::min<std::uint64_t>(profile_.hot_bytes, 4096);
    const std::uint64_t hot_span = profile_.hot_bytes - loop.hot_window;
    loop.hot_base =
        std::uint64_t{0x20000000} +
        (hot_span ? (rng.next_below(hot_span) & ~std::uint64_t{63}) : 0);
    loop.cold_base =
        std::uint64_t{0x40000000} + lu * std::uint64_t{0x04000000};
  }
}

SyntheticProgram::SyntheticProgram(BenchmarkProfile profile,
                                   MachineConfig machine,
                                   std::vector<Loop> loops)
    : profile_(std::move(profile)),
      machine_(machine),
      loops_(std::move(loops)) {
  profile_.validate();
  machine_.validate();
  CVMT_CHECK_MSG(!loops_.empty(), "program needs at least one loop");
  for (Loop& loop : loops_) {
    CVMT_CHECK_MSG(!loop.body.empty(), "loop body cannot be empty");
    CVMT_CHECK_MSG(loop.mean_trips >= 1.0, "trip count below 1");
    CVMT_CHECK_MSG(loop.miss_frac >= 0.0 && loop.miss_frac <= 1.0,
                   "miss fraction out of range");
    CVMT_CHECK_MSG(loop.hot_window >= 1, "hot window must be non-empty");
    loop.footprints.clear();
    loop.patch_ops.clear();
    loop.real_instrs = 0;
    loop.total_ops = 0;
    loop.mem_ops = 0;
    double penalty = 0.0;
    for (std::size_t i = 0; i < loop.body.size(); ++i) {
      const Instruction& instr = loop.body[i];
      const std::string err = instr.validate(machine_);
      CVMT_CHECK_MSG(err.empty(), "invalid instruction in loop: " + err);
      loop.footprints.push_back(Footprint::of(instr, machine_));
      loop.patch_ops.push_back(patch_list_of(instr));
      if (!instr.empty()) ++loop.real_instrs;
      loop.total_ops += static_cast<std::int64_t>(instr.op_count());
      bool has_branch = false;
      for (const Operation& op : instr) {
        if (is_memory(op.kind)) ++loop.mem_ops;
        has_branch |= op.kind == OpKind::kBranch;
      }
      const bool is_last = i + 1 == loop.body.size();
      if (is_last) {
        CVMT_CHECK_MSG(has_branch, "loop must end with a branch");
        penalty += machine_.taken_branch_penalty;
      } else if (has_branch) {
        penalty += profile_.mid_branch_taken *
                   machine_.taken_branch_penalty;
      }
    }
    loop.expected_cycles_perfect =
        static_cast<double>(loop.body.size()) + penalty;
  }
}

double SyntheticProgram::expected_ipc_perfect() const {
  double ops = 0.0;
  double cycles = 0.0;
  for (const Loop& loop : loops_) {
    ops += loop.mean_trips * static_cast<double>(loop.total_ops);
    cycles += loop.mean_trips * loop.expected_cycles_perfect;
  }
  return cycles > 0.0 ? ops / cycles : 0.0;
}

double SyntheticProgram::expected_ipc_real() const {
  double ops = 0.0;
  double cycles = 0.0;
  for (const Loop& loop : loops_) {
    ops += loop.mean_trips * static_cast<double>(loop.total_ops);
    cycles += loop.mean_trips *
              (loop.expected_cycles_perfect +
               loop.miss_frac * static_cast<double>(loop.mem_ops) *
                   profile_.assumed_miss_penalty);
  }
  return cycles > 0.0 ? ops / cycles : 0.0;
}

}  // namespace cvmt
