#include "trace/benchmark_profile.hpp"

#include "support/check.hpp"

namespace cvmt {

void BenchmarkProfile::validate() const {
  CVMT_CHECK_MSG(!name.empty(), "profile needs a name");
  CVMT_CHECK_MSG(target_ipc_perfect >= target_ipc_real,
                 "perfect-memory IPC cannot be below real IPC");
  CVMT_CHECK_MSG(target_ipc_real > 0.0, "IPC target must be positive");
  CVMT_CHECK_MSG(num_loops >= 1, "at least one loop");
  CVMT_CHECK_MSG(mean_body_instrs >= 2.0, "bodies need >= 2 instructions");
  CVMT_CHECK_MSG(mean_trip_count >= 1.0, "trip count mean below 1");
  CVMT_CHECK_MSG(mean_ops_per_instr >= 1.0, "ops per instruction below 1");
  const auto frac = [](double f) { return f >= 0.0 && f <= 1.0; };
  CVMT_CHECK_MSG(frac(mem_op_frac) && frac(store_frac) &&
                     frac(mul_op_frac) && frac(mid_branch_frac) &&
                     frac(mid_branch_taken),
                 "fractions must lie in [0,1]");
  CVMT_CHECK_MSG(mem_op_frac + mul_op_frac <= 1.0,
                 "op mix exceeds 100%");
  CVMT_CHECK_MSG(ops_per_cluster_target > 0.0, "cluster packing target");
  CVMT_CHECK_MSG(hot_bytes >= 64, "hot region too small");
  CVMT_CHECK_MSG(assumed_miss_penalty >= 0, "negative miss penalty");
  CVMT_CHECK_MSG(code_bytes_per_instr >= 1, "code bytes per instruction");
}

}  // namespace cvmt
